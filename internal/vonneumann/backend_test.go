package vonneumann

import (
	"math/rand"
	"testing"

	"cimrev/internal/crossbar"
	"cimrev/internal/dpe"
	"cimrev/internal/nn"
	"cimrev/internal/parallel"
)

// twinInputs builds a deterministic batch of random inputs.
func twinInputs(t *testing.T, n, size int, seed int64) [][]float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ins := make([][]float64, n)
	for i := range ins {
		in := make([]float64, size)
		for j := range in {
			in[j] = rng.Float64()*2 - 1
		}
		ins[i] = in
	}
	return ins
}

// requireBitIdentical compares engine and twin outputs with ==: the twin's
// contract is exactness, not tolerance.
func requireBitIdentical(t *testing.T, want, got [][]float64, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d outputs", label, len(want), len(got))
	}
	for i := range want {
		if len(want[i]) != len(got[i]) {
			t.Fatalf("%s: item %d: %d vs %d elements", label, i, len(want[i]), len(got[i]))
		}
		for j := range want[i] {
			if want[i][j] != got[i][j] {
				t.Fatalf("%s: item %d elem %d: engine %v != twin %v", label, i, j, want[i][j], got[i][j])
			}
		}
	}
}

// twinPair builds an engine and its twin over the same config and network.
func twinPair(t *testing.T, cfg dpe.Config, net *nn.Network) (*dpe.Engine, *Backend) {
	t.Helper()
	eng, err := dpe.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Load(net); err != nil {
		t.Fatal(err)
	}
	twin, err := NewBackend(CPU(), DefaultHierarchy(), cfg.Crossbar, net)
	if err != nil {
		t.Fatal(err)
	}
	return eng, twin
}

// TestTwinBitIdentityFunctionalWidths pins the tentpole contract: on a
// functional (exact integer) config, the digital twin's outputs equal the
// crossbar engine's with ==, for a multi-tile MLP, at worker-pool widths
// 1, 4, and 16. Width 1 is the serial reference; the engine fans blocks
// and batch items across the pool while the twin is single-threaded, so
// agreement at every width is the route-invariance foundation.
func TestTwinBitIdentityFunctionalWidths(t *testing.T) {
	cfg := dpe.DefaultConfig() // functional, ISAAC-scale, 8-bit
	net, err := nn.NewMLP("twin-mlp", []int{300, 200, 50, 10}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	ins := twinInputs(t, 17, 300, 11)

	var ref [][]float64
	for _, w := range []int{1, 4, 16} {
		parallel.SetWidth(w)
		t.Cleanup(func() { parallel.SetWidth(0) })
		eng, twin := twinPair(t, cfg, net)
		want, _, err := eng.InferBatch(ins)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := twin.InferBatch(ins)
		if err != nil {
			t.Fatal(err)
		}
		requireBitIdentical(t, want, got, "engine vs twin")
		if ref == nil {
			ref = got
		} else {
			requireBitIdentical(t, ref, got, "width 1 vs wider")
		}
	}
}

// TestTwinBitIdentityBitSerial pins the harder half of the exactness
// argument: the deterministic bit-serial pipeline — per-(input bit, slice)
// ADC quantization and shift-and-add merge — is replayed digitally through
// the same adcLUT transfer, bit for bit.
func TestTwinBitIdentityBitSerial(t *testing.T) {
	cfg := dpe.DefaultConfig()
	cfg.Crossbar.Functional = false
	net, err := nn.NewMLP("twin-bs", []int{150, 60, 10}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	eng, twin := twinPair(t, cfg, net)
	ins := twinInputs(t, 9, 150, 5)
	want, _, err := eng.InferBatch(ins)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := twin.InferBatch(ins)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, want, got, "bit-serial")
}

// TestTwinBitIdentityConv pins the conv path: im2col patch streaming, the
// per-patch panel MVM, and the bias layout all match the engine exactly,
// on both functional and bit-serial configs.
func TestTwinBitIdentityConv(t *testing.T) {
	net, err := nn.NewLeNetStyle("twin-cnn", 8, 32, 10, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	for _, functional := range []bool{true, false} {
		cfg := dpe.DefaultConfig()
		cfg.Crossbar.Functional = functional
		eng, twin := twinPair(t, cfg, net)
		ins := twinInputs(t, 3, net.InSize(), 9)
		want, _, err := eng.InferBatch(ins)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := twin.InferBatch(ins)
		if err != nil {
			t.Fatal(err)
		}
		requireBitIdentical(t, want, got, "conv")
	}
}

// TestTwinKeyedTrafficMatches pins the dispatcher's keyed argument: on a
// deterministic config, noise keys are inert (no draws are consumed), so
// keyed engine outputs equal the keyless twin outputs exactly.
func TestTwinKeyedTrafficMatches(t *testing.T) {
	cfg := dpe.DefaultConfig()
	net, err := nn.NewMLP("twin-keyed", []int{200, 80, 10}, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	eng, twin := twinPair(t, cfg, net)
	ins := twinInputs(t, 5, 200, 13)
	seqs := []uint64{900, 1, 42, 7, 31337}
	want, _, err := eng.InferBatchKeyed(seqs, ins)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := twin.InferBatch(ins)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, want, got, "keyed")
}

// TestTwinReload pins the reprogram analogue: after Reload the twin tracks
// the engine's Reprogram output exactly, and shape mismatches are rejected.
func TestTwinReload(t *testing.T) {
	cfg := dpe.DefaultConfig()
	rng := rand.New(rand.NewSource(2))
	net, err := nn.NewMLP("twin-a", []int{100, 40, 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	netB, err := nn.NewMLP("twin-b", []int{100, 40, 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	eng, twin := twinPair(t, cfg, net)
	if _, err := eng.Reprogram(netB, true); err != nil {
		t.Fatal(err)
	}
	if err := twin.Reload(netB); err != nil {
		t.Fatal(err)
	}
	ins := twinInputs(t, 4, 100, 6)
	want, _, err := eng.InferBatch(ins)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := twin.InferBatch(ins)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, want, got, "reload")

	bad, err := nn.NewMLP("twin-bad", []int{100, 30, 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := twin.Reload(bad); err == nil {
		t.Fatal("shape-mismatched Reload accepted")
	}
}

// TestTwinRejectsNoisyAndInvalid pins fail-fast construction: noisy
// configs have no digital twin, and broken cache geometries or configs are
// rejected before any quantization happens.
func TestTwinRejectsNoisyAndInvalid(t *testing.T) {
	net, err := nn.NewMLP("twin-rej", []int{16, 8}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	noisy := crossbar.DefaultConfig()
	noisy.ReadNoise = 0.05
	if _, err := NewBackend(CPU(), DefaultHierarchy(), noisy, net); err == nil {
		t.Error("noisy config accepted")
	}
	badH := DefaultHierarchy()
	badH.LineSize = 96
	if _, err := NewBackend(CPU(), badH, crossbar.DefaultConfig(), net); err == nil {
		t.Error("invalid hierarchy accepted")
	}
	badX := crossbar.DefaultConfig()
	badX.ADCBits = 0
	if _, err := NewBackend(CPU(), DefaultHierarchy(), badX, net); err == nil {
		t.Error("invalid crossbar config accepted")
	}
	if _, err := NewBackend(Machine{}, DefaultHierarchy(), crossbar.DefaultConfig(), net); err == nil {
		t.Error("invalid machine accepted")
	}
	if _, err := NewBackend(CPU(), DefaultHierarchy(), crossbar.DefaultConfig(), nil); err == nil {
		t.Error("nil network accepted")
	}
}

// TestTwinPredictMatchesInferCost pins the calibrator's exact prior:
// PredictBatchCost returns the same cost InferBatch charges.
func TestTwinPredictMatchesInferCost(t *testing.T) {
	cfg := dpe.DefaultConfig()
	net, err := nn.NewMLP("twin-pred", []int{256, 256, 10}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	_, twin := twinPair(t, cfg, net)
	for _, n := range []int{1, 8, 64} {
		ins := twinInputs(t, n, 256, int64(n))
		_, cost, err := twin.InferBatch(ins)
		if err != nil {
			t.Fatal(err)
		}
		if pred := twin.PredictBatchCost(n); pred != cost {
			t.Errorf("batch %d: predicted %+v != charged %+v", n, pred, cost)
		}
	}
}

// TestTwinCostIsVonNeumann sanity-checks the pricing side: twin costs come
// from the roofline machine, so a tiny batch-1 kernel must undercut the
// crossbar's fixed InputBits x 100ns read cycles, while a large batched
// panel must not.
func TestTwinCostIsVonNeumann(t *testing.T) {
	small, err := nn.NewMLP("twin-small", []int{16, 16, 16}, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := dpe.DefaultConfig()
	engS, twinS := twinPair(t, cfg, small)
	insS := twinInputs(t, 1, 16, 1)
	_, cimCost, err := engS.InferBatch(insS)
	if err != nil {
		t.Fatal(err)
	}
	vnCost := twinS.PredictBatchCost(1)
	if vnCost.LatencyPS >= cimCost.LatencyPS {
		t.Errorf("batch-1 16-wide MLP: VN %d ps should beat CIM %d ps", vnCost.LatencyPS, cimCost.LatencyPS)
	}

	large, err := nn.NewMLP("twin-large", []int{512, 512, 512}, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	engL, twinL := twinPair(t, cfg, large)
	insL := twinInputs(t, 64, 512, 2)
	_, cimL, err := engL.InferBatch(insL)
	if err != nil {
		t.Fatal(err)
	}
	if vnL := twinL.PredictBatchCost(64); vnL.LatencyPS <= cimL.LatencyPS {
		t.Errorf("batch-64 512-wide MLP: CIM %d ps should beat VN %d ps", cimL.LatencyPS, vnL.LatencyPS)
	}
}
