package vonneumann

import (
	"fmt"
	"math"

	"cimrev/internal/energy"
)

// Machine is a roofline model of a Von Neumann processor: execution time is
// bounded by either peak arithmetic throughput or memory bandwidth,
// whichever the kernel saturates first, and energy is charged per FLOP and
// per byte moved. This captures exactly the imbalance Fig 2 tracks — the
// bytes/FLOP ratio — which is the quantity CIM attacks.
type Machine struct {
	// Name labels the machine in reports.
	Name string
	// PeakFlops is peak arithmetic throughput in FLOP/s.
	PeakFlops float64
	// MemBandwidth is sustained memory bandwidth in bytes/s.
	MemBandwidth float64
	// FlopEnergyPJ is energy per FLOP.
	FlopEnergyPJ float64
	// ByteEnergyPJ is energy per byte of memory traffic.
	ByteEnergyPJ float64
	// StaticPowerW is idle/uncore power charged over kernel runtime.
	StaticPowerW float64
	// LaunchLatencyPS is fixed per-kernel overhead (host dispatch).
	LaunchLatencyPS int64
}

// Validate reports whether the machine parameters are usable.
func (m Machine) Validate() error {
	switch {
	case m.PeakFlops <= 0:
		return fmt.Errorf("vonneumann: PeakFlops must be positive, got %g", m.PeakFlops)
	case m.MemBandwidth <= 0:
		return fmt.Errorf("vonneumann: MemBandwidth must be positive, got %g", m.MemBandwidth)
	case m.FlopEnergyPJ < 0 || m.ByteEnergyPJ < 0 || m.StaticPowerW < 0:
		return fmt.Errorf("vonneumann: energies must be non-negative")
	case m.LaunchLatencyPS < 0:
		return fmt.Errorf("vonneumann: LaunchLatencyPS must be non-negative")
	}
	return nil
}

// BytesPerFlop returns the machine's balance ratio — the Fig 2 metric.
func (m Machine) BytesPerFlop() float64 { return m.MemBandwidth / m.PeakFlops }

// CPU returns the modeled server CPU socket.
func CPU() Machine {
	return Machine{
		Name:         "cpu",
		PeakFlops:    energy.CPUPeakFlops,
		MemBandwidth: energy.CPUMemBandwidth,
		FlopEnergyPJ: energy.CPUFlopEnergyPJ,
		ByteEnergyPJ: energy.DRAMAccessEnergyPJPerByte,
		StaticPowerW: energy.CPUStaticPowerW,
	}
}

// GPU returns the modeled HBM-era accelerator.
func GPU() Machine {
	return Machine{
		Name:            "gpu",
		PeakFlops:       energy.GPUPeakFlops,
		MemBandwidth:    energy.GPUMemBandwidth,
		FlopEnergyPJ:    energy.GPUFlopEnergyPJ,
		ByteEnergyPJ:    energy.HBMAccessEnergyPJPerByte,
		StaticPowerW:    energy.GPUStaticPowerW,
		LaunchLatencyPS: energy.GPUKernelLaunchLatencyPS,
	}
}

// Kernel characterizes one computation for the roofline model.
type Kernel struct {
	// Name labels the kernel.
	Name string
	// Flops is the arithmetic operation count.
	Flops float64
	// Bytes is the memory traffic in bytes (compulsory + capacity misses).
	Bytes float64
}

// OperationalIntensity returns FLOPs per byte — the x-axis of a roofline
// plot and a column of the paper's Table 2.
func (k Kernel) OperationalIntensity() float64 {
	if k.Bytes == 0 {
		return math.Inf(1)
	}
	return k.Flops / k.Bytes
}

// Run returns the cost of executing the kernel on the machine.
func (m Machine) Run(k Kernel) (energy.Cost, error) {
	if err := m.Validate(); err != nil {
		return energy.Zero, err
	}
	if k.Flops < 0 || k.Bytes < 0 {
		return energy.Zero, fmt.Errorf("vonneumann: negative kernel (%g flops, %g bytes)", k.Flops, k.Bytes)
	}
	computeS := k.Flops / m.PeakFlops
	memoryS := k.Bytes / m.MemBandwidth
	runS := math.Max(computeS, memoryS)
	latency := m.LaunchLatencyPS + energy.PicosecondsFromSeconds(runS)
	dynamic := k.Flops*m.FlopEnergyPJ + k.Bytes*m.ByteEnergyPJ
	static := m.StaticPowerW * (float64(latency) * 1e-12) * 1e12 // W * s -> pJ
	return energy.Cost{LatencyPS: latency, EnergyPJ: dynamic + static}, nil
}

// GEMM builds the kernel for Y = X·W with a batch of `items` input vectors
// against an m x n matrix of elemBytes-wide weights: the batched
// generalization of GEMV. The weight panel streams once per call — not
// once per vector — which is what batching buys on a Von Neumann machine;
// when the panel fits in cache and resident is true even that single pass
// is free after first touch and only per-vector traffic remains.
func GEMM(items, m, n int, elemBytes int, cacheBytes float64, resident bool) Kernel {
	flops := 2 * float64(items) * float64(m) * float64(n)
	weightBytes := float64(m) * float64(n) * float64(elemBytes)
	vectorBytes := float64(items) * float64(m+n) * float64(elemBytes)
	bytes := weightBytes + vectorBytes
	if resident && weightBytes <= cacheBytes {
		bytes = vectorBytes
	}
	return Kernel{
		Name:  fmt.Sprintf("gemm-%dx%dx%d", items, m, n),
		Flops: flops,
		Bytes: bytes,
	}
}

// GEMV builds the kernel for y = W·x with an m x n matrix of elemBytes-wide
// weights, given the machine's cache capacity in bytes. If the working set
// (weights + vectors) fits in cache and resident is true, weight traffic is
// free after the first touch and only vector traffic remains; otherwise
// every weight streams from memory — the data movement CIM eliminates by
// computing where the weights already are.
func GEMV(m, n int, elemBytes int, cacheBytes float64, resident bool) Kernel {
	flops := 2 * float64(m) * float64(n)
	weightBytes := float64(m) * float64(n) * float64(elemBytes)
	vectorBytes := float64(m+n) * float64(elemBytes)
	bytes := weightBytes + vectorBytes
	if resident && weightBytes+vectorBytes <= cacheBytes {
		bytes = vectorBytes
	}
	return Kernel{
		Name:  fmt.Sprintf("gemv-%dx%d", m, n),
		Flops: flops,
		Bytes: bytes,
	}
}
