// Package vonneumann models the architecture the paper positions CIM
// against (Section I, Fig 1): a CPU or GPU that must move every operand
// through a memory hierarchy. It provides a trace-driven set-associative
// cache simulator (the cache hierarchies whose "complexity and security
// flaws" Section I recounts) and roofline machine models used as the
// baselines in every experiment.
package vonneumann

import (
	"fmt"

	"cimrev/internal/energy"
)

// Level identifies where an access was served.
type Level int

const (
	// LevelL1 is a first-level cache hit.
	LevelL1 Level = iota + 1
	// LevelL2 is a second-level cache hit.
	LevelL2
	// LevelLLC is a last-level cache hit.
	LevelLLC
	// LevelDRAM is a miss all the way to memory.
	LevelDRAM
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelLLC:
		return "LLC"
	case LevelDRAM:
		return "DRAM"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// cacheLevel is one set-associative cache with true-LRU replacement.
type cacheLevel struct {
	sets     int
	ways     int
	lineBits uint
	// tags[set][way]; lru[set][way] — larger is more recent.
	tags  [][]uint64
	valid [][]bool
	lru   [][]uint64
	tick  uint64
}

func newCacheLevel(sizeBytes, ways, lineSize int) (*cacheLevel, error) {
	if sizeBytes <= 0 || ways <= 0 || lineSize <= 0 {
		return nil, fmt.Errorf("vonneumann: cache params must be positive (%d, %d, %d)", sizeBytes, ways, lineSize)
	}
	if lineSize&(lineSize-1) != 0 {
		return nil, fmt.Errorf("vonneumann: line size %d must be a power of two", lineSize)
	}
	lines := sizeBytes / lineSize
	if lines < ways || lines%ways != 0 {
		return nil, fmt.Errorf("vonneumann: size %d / line %d must be a multiple of ways %d", sizeBytes, lineSize, ways)
	}
	sets := lines / ways
	var lineBits uint
	for 1<<lineBits < lineSize {
		lineBits++
	}
	c := &cacheLevel{sets: sets, ways: ways, lineBits: lineBits}
	c.tags = make([][]uint64, sets)
	c.valid = make([][]bool, sets)
	c.lru = make([][]uint64, sets)
	for i := 0; i < sets; i++ {
		c.tags[i] = make([]uint64, ways)
		c.valid[i] = make([]bool, ways)
		c.lru[i] = make([]uint64, ways)
	}
	return c, nil
}

// access returns true on hit; on miss it fills the line, evicting LRU.
func (c *cacheLevel) access(addr uint64) bool {
	line := addr >> c.lineBits
	set := int(line % uint64(c.sets))
	tag := line / uint64(c.sets)
	c.tick++
	for w := 0; w < c.ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			c.lru[set][w] = c.tick
			return true
		}
	}
	// Miss: fill LRU way.
	victim := 0
	for w := 1; w < c.ways; w++ {
		if !c.valid[set][w] {
			victim = w
			break
		}
		if c.lru[set][w] < c.lru[set][victim] {
			victim = w
		}
	}
	c.tags[set][victim] = tag
	c.valid[set][victim] = true
	c.lru[set][victim] = c.tick
	return false
}

// HierarchyConfig sizes a three-level cache hierarchy.
type HierarchyConfig struct {
	L1Size, L1Ways   int
	L2Size, L2Ways   int
	LLCSize, LLCWays int
	LineSize         int
}

// DefaultHierarchy returns a server-class hierarchy: 32 KiB/8-way L1,
// 1 MiB/16-way L2, 32 MiB/16-way LLC, 64 B lines.
func DefaultHierarchy() HierarchyConfig {
	return HierarchyConfig{
		L1Size: 32 << 10, L1Ways: 8,
		L2Size: 1 << 20, L2Ways: 16,
		LLCSize: 32 << 20, LLCWays: 16,
		LineSize: 64,
	}
}

// Validate rejects geometries the per-level constructor would silently
// mangle (sizes that are not whole lines truncate via integer division)
// or that describe a physically incoherent hierarchy. Every constructor
// that consumes a HierarchyConfig calls this first so the executing
// backend fails fast instead of simulating a cache that cannot exist.
func (cfg HierarchyConfig) Validate() error {
	if cfg.LineSize <= 0 {
		return fmt.Errorf("vonneumann: line size must be positive (%d)", cfg.LineSize)
	}
	if cfg.LineSize&(cfg.LineSize-1) != 0 {
		return fmt.Errorf("vonneumann: line size %d must be a power of two", cfg.LineSize)
	}
	levels := []struct {
		name       string
		size, ways int
	}{
		{"L1", cfg.L1Size, cfg.L1Ways},
		{"L2", cfg.L2Size, cfg.L2Ways},
		{"LLC", cfg.LLCSize, cfg.LLCWays},
	}
	for _, l := range levels {
		if l.size <= 0 || l.ways <= 0 {
			return fmt.Errorf("vonneumann: %s size and ways must be positive (%d, %d)", l.name, l.size, l.ways)
		}
		if l.size%cfg.LineSize != 0 {
			return fmt.Errorf("vonneumann: %s size %d must be a multiple of line size %d", l.name, l.size, cfg.LineSize)
		}
		lines := l.size / cfg.LineSize
		if lines < l.ways {
			return fmt.Errorf("vonneumann: %s holds %d lines, fewer than %d ways", l.name, lines, l.ways)
		}
		if lines%l.ways != 0 {
			return fmt.Errorf("vonneumann: %s line count %d must be a multiple of ways %d", l.name, lines, l.ways)
		}
	}
	if cfg.L1Size > cfg.L2Size {
		return fmt.Errorf("vonneumann: L1 size %d exceeds L2 size %d", cfg.L1Size, cfg.L2Size)
	}
	if cfg.L2Size > cfg.LLCSize {
		return fmt.Errorf("vonneumann: L2 size %d exceeds LLC size %d", cfg.L2Size, cfg.LLCSize)
	}
	return nil
}

// Hierarchy is a three-level inclusive cache simulator with per-level cost
// accounting. Not safe for concurrent use.
type Hierarchy struct {
	cfg HierarchyConfig
	l1  *cacheLevel
	l2  *cacheLevel
	llc *cacheLevel

	hits   map[Level]int64
	access int64
}

// NewHierarchy builds the hierarchy.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l1, err := newCacheLevel(cfg.L1Size, cfg.L1Ways, cfg.LineSize)
	if err != nil {
		return nil, fmt.Errorf("vonneumann: L1: %w", err)
	}
	l2, err := newCacheLevel(cfg.L2Size, cfg.L2Ways, cfg.LineSize)
	if err != nil {
		return nil, fmt.Errorf("vonneumann: L2: %w", err)
	}
	llc, err := newCacheLevel(cfg.LLCSize, cfg.LLCWays, cfg.LineSize)
	if err != nil {
		return nil, fmt.Errorf("vonneumann: LLC: %w", err)
	}
	return &Hierarchy{
		cfg: cfg, l1: l1, l2: l2, llc: llc,
		hits: make(map[Level]int64),
	}, nil
}

// LineSize returns the cache line size in bytes.
func (h *Hierarchy) LineSize() int { return h.cfg.LineSize }

// Access simulates one load of the byte at addr, returning the serving
// level and its cost (for the full line's worth of energy at that level).
func (h *Hierarchy) Access(addr uint64) (Level, energy.Cost) {
	h.access++
	line := float64(h.cfg.LineSize)
	if h.l1.access(addr) {
		h.hits[LevelL1]++
		return LevelL1, energy.Cost{
			LatencyPS: energy.L1AccessLatencyPS,
			EnergyPJ:  line * energy.L1AccessEnergyPJPerByte,
		}
	}
	if h.l2.access(addr) {
		h.hits[LevelL2]++
		return LevelL2, energy.Cost{
			LatencyPS: energy.L2AccessLatencyPS,
			EnergyPJ:  line * energy.L2AccessEnergyPJPerByte,
		}
	}
	if h.llc.access(addr) {
		h.hits[LevelLLC]++
		return LevelLLC, energy.Cost{
			LatencyPS: energy.LLCAccessLatencyPS,
			EnergyPJ:  line * energy.LLCAccessEnergyPJPerByte,
		}
	}
	h.hits[LevelDRAM]++
	return LevelDRAM, energy.Cost{
		LatencyPS: energy.DRAMAccessLatencyPS,
		EnergyPJ:  line * energy.DRAMAccessEnergyPJPerByte,
	}
}

// Stats reports per-level hit counts and the total access count.
func (h *Hierarchy) Stats() (map[Level]int64, int64) {
	out := make(map[Level]int64, len(h.hits))
	for k, v := range h.hits {
		out[k] = v
	}
	return out, h.access
}

// HitRate returns the fraction of accesses served at or above the level.
func (h *Hierarchy) HitRate(level Level) float64 {
	if h.access == 0 {
		return 0
	}
	var n int64
	for l := LevelL1; l <= level; l++ {
		n += h.hits[l]
	}
	return float64(n) / float64(h.access)
}
