package vonneumann

import (
	"strings"
	"testing"
)

// TestHierarchyConfigValidate pins the construction-time geometry checks:
// every config the per-level constructor would silently truncate or that
// describes an incoherent hierarchy must be rejected with a message naming
// the offending level, and the default plus reasonable variants must pass.
func TestHierarchyConfigValidate(t *testing.T) {
	base := DefaultHierarchy()
	mod := func(f func(*HierarchyConfig)) HierarchyConfig {
		cfg := base
		f(&cfg)
		return cfg
	}
	cases := []struct {
		name    string
		cfg     HierarchyConfig
		wantErr string // substring; "" means must validate
	}{
		{"default", base, ""},
		{"edge/L1 one set", mod(func(c *HierarchyConfig) { c.L1Size = 8 * 64; c.L1Ways = 8 }), ""},
		{"edge/equal sizes", mod(func(c *HierarchyConfig) {
			c.L1Size = 1 << 20
			c.L2Size = 1 << 20
			c.LLCSize = 1 << 20
		}), ""},
		{"line/zero", mod(func(c *HierarchyConfig) { c.LineSize = 0 }), "line size must be positive"},
		{"line/negative", mod(func(c *HierarchyConfig) { c.LineSize = -64 }), "line size must be positive"},
		{"line/not pow2", mod(func(c *HierarchyConfig) { c.LineSize = 96 }), "power of two"},
		{"L1/zero size", mod(func(c *HierarchyConfig) { c.L1Size = 0 }), "L1 size and ways must be positive"},
		{"L1/zero ways", mod(func(c *HierarchyConfig) { c.L1Ways = 0 }), "L1 size and ways must be positive"},
		{"L2/negative ways", mod(func(c *HierarchyConfig) { c.L2Ways = -1 }), "L2 size and ways must be positive"},
		{"L1/ragged size", mod(func(c *HierarchyConfig) { c.L1Size = 32<<10 + 1 }), "L1 size 32769 must be a multiple of line size"},
		{"L2/ragged size", mod(func(c *HierarchyConfig) { c.L2Size = 1<<20 + 32 }), "L2 size 1048608 must be a multiple of line size"},
		{"L1/fewer lines than ways", mod(func(c *HierarchyConfig) { c.L1Size = 4 * 64 }), "L1 holds 4 lines, fewer than 8 ways"},
		{"LLC/lines not multiple of ways", mod(func(c *HierarchyConfig) {
			c.LLCSize = 18 * 64
			c.LLCWays = 16
			c.L1Size = 64 * 8
			c.L2Size = 64 * 16
		}), "LLC line count 18 must be a multiple of ways"},
		{"order/L1 over L2", mod(func(c *HierarchyConfig) { c.L1Size = 2 << 20 }), "L1 size 2097152 exceeds L2 size"},
		{"order/L2 over LLC", mod(func(c *HierarchyConfig) { c.L2Size = 64 << 20 }), "L2 size 67108864 exceeds LLC size"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				if _, err := NewHierarchy(tc.cfg); err != nil {
					t.Fatalf("NewHierarchy() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %q, want substring %q", err, tc.wantErr)
			}
			if _, err := NewHierarchy(tc.cfg); err == nil {
				t.Fatal("NewHierarchy accepted a config Validate rejects")
			}
		})
	}
}
