package vonneumann

import (
	"fmt"
	"math"
	"sync"

	"cimrev/internal/crossbar"
	"cimrev/internal/energy"
	"cimrev/internal/nn"
	"cimrev/internal/obs"
)

// Backend is the executing digital twin of a deterministic DPE engine: a
// Von Neumann backend that reproduces the crossbar inference path
// bit-exactly in integer arithmetic, priced by the package's roofline and
// cache models instead of the analog cost constants.
//
// Exactness argument (docs/HYBRID.md): the deterministic crossbar pipeline
// is, end to end, a pure function of quantized integers. Program quantizes
// each tile block's weights to WeightBits with a per-block scale; MVMInto
// quantizes the block's input segment to InputBits; the functional kernel
// reduces them with exact int64 arithmetic, and the bit-serial kernel (at
// ReadNoise 0) applies the tabulated adcLUT transfer to exact integer
// column sums. The Backend replays those same integer computations — a
// blocked int GEMM for functional configs, the LUT transfer for bit-serial
// ones — followed by the identical float64 offset-removal expression and
// the identical fixed-order block merge, so every intermediate float64 is
// the same value in the same order and the outputs compare with ==, not a
// tolerance. The crossbar's tile decomposition doubles as the cache
// blocking: one quantized 128x128 int32 panel is 64 KiB, L2-resident on
// the modeled machine.
//
// Costs are a different story on purpose: the Backend prices each stage as
// a roofline GEMM kernel (weights stream from memory unless the whole
// quantized network fits in the LLC), so the simulated latency and energy
// are honest Von Neumann numbers. Bit-serial configs pay the full
// replication factor — reproducing the per-(input bit, slice) ADC transfer
// digitally is a slices x InputBits/2 more expensive integer kernel, and
// the model says so rather than pretending the cheap functional GEMM
// suffices.
//
// A Backend is safe for concurrent InferBatch calls; Reload serializes
// against them with a RW lock. Noisy or faulty configurations have no twin
// — NewBackend rejects ReadNoise > 0, and callers with fault injection
// enabled must not build one (the dispatcher pins that traffic to CIM).
type Backend struct {
	mach Machine
	hcfg HierarchyConfig
	xcfg crossbar.Config

	mu     sync.RWMutex
	net    *nn.Network
	stages []twinStage

	// scaleTab[i] = 2^i, the bit-serial shift-and-add factors — the same
	// table the crossbar kernel uses.
	scaleTab []float64
	// resident is true when every stage's quantized weight panel fits in
	// the LLC together, making steady-state weight traffic free.
	resident bool
}

// twinStage mirrors one dpe stage: a quantized integer panel for dense and
// conv layers, the layer itself for digital stages.
type twinStage struct {
	layer nn.Layer
	dense *nn.Dense
	conv  *nn.Conv2D
	panel *intPanel
}

// intPanel is the digital replica of a programmed crossbar.Tile: the same
// ceil(M/Rows) x ceil(N/Cols) block decomposition with each block holding
// its own quantization scale, integer weights, stored column sums, and ADC
// transfer table.
type intPanel struct {
	rows, cols   int
	brows, bcols int
	blocks       []intBlock // block b = br*bcols + bc
}

// intBlock is the digital replica of one programmed crossbar's state.
type intBlock struct {
	ur, uc int // used rows/cols
	wScale float64
	// wIntT[c*ur+r] is the shift-encoded quantized weight, column-major —
	// the GEMM panel. Slice levels for the bit-serial path are extracted
	// from it by shift and mask, exactly as Program distributed them.
	wIntT     []int32
	colSumInt []int64
	adcStep   float64
	// adcLUT[v] = Round(v/adcStep)*adcStep for integer column sums v —
	// the same table Program builds, computed with the same expression.
	adcLUT []float64
}

// NewBackend builds the executing twin for a deterministic crossbar config
// and network, priced on mach with the hcfg cache geometry. It rejects
// noisy configs (there is no digital twin for Gaussian analog noise) and
// invalid cache geometries, and fails on layers the DPE cannot map.
func NewBackend(mach Machine, hcfg HierarchyConfig, xcfg crossbar.Config, net *nn.Network) (*Backend, error) {
	if err := mach.Validate(); err != nil {
		return nil, err
	}
	if err := hcfg.Validate(); err != nil {
		return nil, err
	}
	if err := xcfg.Validate(); err != nil {
		return nil, err
	}
	if xcfg.ReadNoise > 0 {
		return nil, fmt.Errorf("vonneumann: no digital twin for ReadNoise %g (noisy traffic is pinned to CIM)", xcfg.ReadNoise)
	}
	b := &Backend{mach: mach, hcfg: hcfg, xcfg: xcfg}
	b.scaleTab = make([]float64, xcfg.InputBits+xcfg.WeightBits)
	for i := range b.scaleTab {
		b.scaleTab[i] = float64(int64(1) << uint(i))
	}
	if err := b.Reload(net); err != nil {
		return nil, err
	}
	return b, nil
}

// Config returns the crossbar configuration the twin replicates.
func (b *Backend) Config() crossbar.Config { return b.xcfg }

// Machine returns the pricing machine model.
func (b *Backend) Machine() Machine { return b.mach }

// Network returns the currently loaded network.
func (b *Backend) Network() *nn.Network {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.net
}

// Reload re-quantizes the twin from net — the digital analogue of a
// shadow-pair reprogram. After the first load the topology must stay
// identical, mirroring dpe.Engine.Reprogram. It blocks until in-flight
// InferBatch calls drain.
func (b *Backend) Reload(net *nn.Network) error {
	if net == nil || len(net.Layers) == 0 {
		return fmt.Errorf("vonneumann: empty network")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.net != nil {
		if len(net.Layers) != len(b.stages) {
			return fmt.Errorf("vonneumann: Reload requires identical topology")
		}
		for i, l := range net.Layers {
			if l.InSize() != b.stages[i].layer.InSize() || l.OutSize() != b.stages[i].layer.OutSize() {
				return fmt.Errorf("vonneumann: Reload layer %d shape mismatch", i)
			}
		}
	}
	stages := make([]twinStage, len(net.Layers))
	for i, layer := range net.Layers {
		s := twinStage{layer: layer}
		switch l := layer.(type) {
		case *nn.Dense:
			s.dense = l
			s.panel = b.quantizePanel(l.WeightMatrix())
		case *nn.Conv2D:
			s.conv = l
			s.panel = b.quantizePanel(l.Im2ColMatrix())
		case *nn.ActivationLayer, *nn.MaxPool2D:
			// Digital stages run the layer directly.
		default:
			return fmt.Errorf("vonneumann: unsupported layer %d (%s)", i, layer.Name())
		}
		stages[i] = s
	}
	b.net = net
	b.stages = stages
	b.resident = b.weightBytes() <= float64(b.hcfg.LLCSize)
	return nil
}

// weightBytes is the total quantized panel footprint (int32 elements).
func (b *Backend) weightBytes() float64 {
	var total float64
	for _, s := range b.stages {
		if s.panel != nil {
			total += float64(s.panel.rows) * float64(s.panel.cols) * 4
		}
	}
	return total
}

// quantizePanel replays crossbar.Tile.Program's per-block quantization:
// each Rows x Cols block normalizes by its own max |w|, shift-encodes into
// [0, 2^WeightBits-1] with the same rounding, and tabulates the same ADC
// transfer for its row count.
func (b *Backend) quantizePanel(w [][]float64) *intPanel {
	m, n := len(w), len(w[0])
	p := &intPanel{
		rows: m, cols: n,
		brows: (m + b.xcfg.Rows - 1) / b.xcfg.Rows,
		bcols: (n + b.xcfg.Cols - 1) / b.xcfg.Cols,
	}
	p.blocks = make([]intBlock, p.brows*p.bcols)
	wMax := float64(int(1)<<b.xcfg.WeightBits - 1)
	cellMax := float64(int(1)<<b.xcfg.CellBits - 1)
	for bi := range p.blocks {
		br, bc := bi/p.bcols, bi%p.bcols
		r0, r1 := br*b.xcfg.Rows, minInt((br+1)*b.xcfg.Rows, m)
		c0, c1 := bc*b.xcfg.Cols, minInt((bc+1)*b.xcfg.Cols, n)
		blk := intBlock{ur: r1 - r0, uc: c1 - c0}
		wScale := 0.0
		for r := r0; r < r1; r++ {
			for _, v := range w[r][c0:c1] {
				if a := math.Abs(v); a > wScale {
					wScale = a
				}
			}
		}
		if wScale == 0 {
			wScale = 1
		}
		blk.wScale = wScale
		blk.wIntT = make([]int32, blk.ur*blk.uc)
		blk.colSumInt = make([]int64, blk.uc)
		for r := r0; r < r1; r++ {
			for c := c0; c < c1; c++ {
				w01 := (w[r][c]/wScale + 1) / 2
				wInt := int(math.Round(w01 * wMax))
				blk.colSumInt[c-c0] += int64(wInt)
				blk.wIntT[(c-c0)*blk.ur+(r-r0)] = int32(wInt)
			}
		}
		adcMaxSum := float64(blk.ur) * cellMax
		blk.adcStep = adcMaxSum / float64(int(1)<<b.xcfg.ADCBits-1)
		blk.adcLUT = make([]float64, int(adcMaxSum)+1)
		for v := range blk.adcLUT {
			blk.adcLUT[v] = math.Round(float64(v)/blk.adcStep) * blk.adcStep
		}
		p.blocks[bi] = blk
	}
	return p
}

// segQuant is one block-row's quantized input segment: every block in the
// row shares it, exactly as every crossbar in a tile row receives the same
// input slice.
type segQuant struct {
	xScale  float64
	xInt    []int32
	xSumInt int64
	// active[b] lists the segment rows whose input bit b is set — the
	// bit-serial path's active-row lists.
	active [][]int32
}

// panelMVM replays crossbar.Tile MVM: per-block MVMs merged in fixed block
// order with digital adds.
func (b *Backend) panelMVM(p *intPanel, input []float64) ([]float64, error) {
	if len(input) != p.rows {
		return nil, fmt.Errorf("vonneumann: input length %d != rows %d", len(input), p.rows)
	}
	for i, v := range input {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("vonneumann: non-finite input at index %d", i)
		}
	}
	xMax := int32(1)<<b.xcfg.InputBits - 1
	segs := make([]segQuant, p.brows)
	for br := range segs {
		r0, r1 := br*b.xcfg.Rows, minInt((br+1)*b.xcfg.Rows, p.rows)
		seg := input[r0:r1]
		q := segQuant{xInt: make([]int32, len(seg))}
		for _, v := range seg {
			if a := math.Abs(v); a > q.xScale {
				q.xScale = a
			}
		}
		if q.xScale == 0 {
			q.xScale = 1
		}
		for i, v := range seg {
			x01 := (v/q.xScale + 1) / 2
			xi := int32(math.Round(x01 * float64(xMax)))
			q.xInt[i] = xi
			q.xSumInt += int64(xi)
		}
		if !b.xcfg.Functional {
			q.active = make([][]int32, b.xcfg.InputBits)
			for bit := range q.active {
				mask := int32(1) << uint(bit)
				for r, xi := range q.xInt {
					if xi&mask != 0 {
						q.active[bit] = append(q.active[bit], int32(r))
					}
				}
			}
		}
		segs[br] = q
	}

	out := make([]float64, p.cols)
	stripe := make([]float64, b.xcfg.Cols)
	for bi := range p.blocks {
		br, bc := bi/p.bcols, bi%p.bcols
		blk := &p.blocks[bi]
		dst := stripe[:blk.uc]
		b.blockMVM(blk, &segs[br], dst)
		c0 := bc * b.xcfg.Cols
		for i, v := range dst {
			out[c0+i] += v
		}
	}
	return out, nil
}

// blockMVM replays one crossbar's deterministic MVMInto: the exact integer
// kernel, then the identical offset-removal expression.
func (b *Backend) blockMVM(blk *intBlock, q *segQuant, dst []float64) {
	if b.xcfg.Functional {
		// Functional config: the analog pipeline reduces to an exact
		// integer GEMV on the quantized panel — the blocked int GEMM this
		// backend exists for. The int64 accumulation equals the crossbar's
		// slice-by-slice shift-and-add identically (both are exact).
		for c := 0; c < blk.uc; c++ {
			col := blk.wIntT[c*blk.ur : (c+1)*blk.ur]
			var sum int64
			for r, wv := range col {
				sum += int64(wv) * int64(q.xInt[r])
			}
			dst[c] = float64(sum)
		}
	} else {
		// Bit-serial config at ReadNoise 0: per (input bit, slice, column)
		// the integer column sum over active rows goes through the adcLUT
		// transfer and shift-and-add scale, accumulated per column in the
		// crossbar kernel's (bit asc, slice asc) float64 order.
		numSlices := b.xcfg.WeightBits / b.xcfg.CellBits
		cellMask := int32(1)<<b.xcfg.CellBits - 1
		sums := make([]int64, numSlices)
		for c := 0; c < blk.uc; c++ {
			col := blk.wIntT[c*blk.ur : (c+1)*blk.ur]
			acc := 0.0
			for bit := 0; bit < b.xcfg.InputBits; bit++ {
				for si := range sums {
					sums[si] = 0
				}
				for _, r := range q.active[bit] {
					wv := col[r]
					for si := 0; si < numSlices; si++ {
						sums[si] += int64((wv >> uint(si*b.xcfg.CellBits)) & cellMask)
					}
				}
				for si := 0; si < numSlices; si++ {
					acc += blk.adcLUT[sums[si]] * b.scaleTab[bit+si*b.xcfg.CellBits]
				}
			}
			dst[c] = acc
		}
	}
	// Offset removal — the verbatim crossbar expression:
	// y = wScale*xScale * (4*acc/(Wmax*Xmax) - 2*colSum/Wmax - 2*xSum/Xmax + n).
	wMax := float64(int(1)<<b.xcfg.WeightBits - 1)
	fxMax := float64(int32(1)<<b.xcfg.InputBits - 1)
	n := float64(blk.ur)
	for c := range dst {
		t := 4*dst[c]/(wMax*fxMax) -
			2*float64(blk.colSumInt[c])/wMax -
			2*float64(q.xSumInt)/fxMax + n
		dst[c] = blk.wScale * q.xScale * t
	}
}

// InferBatch runs the batch through the digital twin, returning outputs
// bit-identical to dpe.Engine.InferBatch on the same (config, network)
// and the roofline-priced Von Neumann cost of the batch.
func (b *Backend) InferBatch(inputs [][]float64) ([][]float64, energy.Cost, error) {
	return b.InferBatchCtx(obs.Ctx{}, inputs)
}

// InferBatchCtx is InferBatch under a trace span ("vn.infer_batch",
// annotated with the batch size).
func (b *Backend) InferBatchCtx(pc obs.Ctx, inputs [][]float64) ([][]float64, energy.Cost, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if len(inputs) == 0 {
		return nil, energy.Zero, fmt.Errorf("vonneumann: empty batch")
	}
	for i, in := range inputs {
		if len(in) != b.net.InSize() {
			return nil, energy.Zero, fmt.Errorf("vonneumann: input %d length %d != %d", i, len(in), b.net.InSize())
		}
	}
	sp := pc.Child("vn.infer_batch")
	outs := make([][]float64, len(inputs))
	for i, in := range inputs {
		out, err := b.inferOne(in)
		if err != nil {
			sp.End(energy.Zero)
			return nil, energy.Zero, err
		}
		outs[i] = out
	}
	cost := b.predictLocked(len(inputs))
	if sp.Active() {
		sp.Annotate("batch", float64(len(inputs)))
	}
	sp.End(cost)
	return outs, cost, nil
}

// inferOne advances one item through the stage chain, mirroring
// dpe.Engine.runStage for each stage kind.
func (b *Backend) inferOne(in []float64) ([]float64, error) {
	v := in
	for i := range b.stages {
		s := &b.stages[i]
		switch {
		case s.dense != nil:
			out, err := b.panelMVM(s.panel, v)
			if err != nil {
				return nil, err
			}
			for o := range out {
				out[o] += s.dense.B[o]
			}
			v = out
		case s.conv != nil:
			l := s.conv
			oh, ow := l.OutH(), l.OutW()
			out := make([]float64, oh*ow*l.F)
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					patch, err := l.Patch(v, oy, ox)
					if err != nil {
						return nil, err
					}
					y, err := b.panelMVM(s.panel, patch)
					if err != nil {
						return nil, err
					}
					p := oy*ow + ox
					for f := 0; f < l.F; f++ {
						out[p*l.F+f] = y[f] + l.B[f]
					}
				}
			}
			v = out
		default:
			out, err := s.layer.Forward(v)
			if err != nil {
				return nil, err
			}
			v = out
		}
	}
	return v, nil
}

// PredictBatchCost prices a batch of n items without executing it — the
// dispatcher's exact Von Neumann prior (InferBatch returns the same cost).
func (b *Backend) PredictBatchCost(n int) energy.Cost {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.predictLocked(n)
}

func (b *Backend) predictLocked(n int) energy.Cost {
	// Bit-serial configs digitally replay the per-(input bit, slice) ADC
	// transfer: on average half the input bits are set, so the integer
	// kernel costs slices*InputBits/2 times the plain GEMM (never less
	// than the GEMM itself).
	replay := 1.0
	if !b.xcfg.Functional {
		numSlices := float64(b.xcfg.WeightBits / b.xcfg.CellBits)
		if r := numSlices * float64(b.xcfg.InputBits) / 2; r > 1 {
			replay = r
		}
	}
	total := energy.Zero
	for i := range b.stages {
		s := &b.stages[i]
		var k Kernel
		switch {
		case s.dense != nil:
			k = b.stageGEMM(n, s.panel.rows, s.panel.cols, 1, replay)
		case s.conv != nil:
			patches := s.conv.OutH() * s.conv.OutW()
			k = b.stageGEMM(n, s.panel.rows, s.panel.cols, patches, replay)
		default:
			k = Kernel{
				Name:  s.layer.Name(),
				Flops: float64(n) * s.layer.Flops(),
				Bytes: float64(n) * 16 * float64(s.layer.InSize()),
			}
		}
		c, err := b.mach.Run(k)
		if err != nil {
			// Machine and kernel were validated at construction; a failure
			// here is a programming error, not a runtime condition.
			panic(err)
		}
		total = total.Seq(c)
	}
	return total
}

// stageGEMM prices one dense/conv stage for a batch of n items: the panel
// GEMM (vectors per item x patch, weights once per flush unless the whole
// quantized network is LLC-resident), plus the quantize and offset-removal
// overhead, with the bit-serial replay factor applied to the GEMM flops.
func (b *Backend) stageGEMM(n, rows, cols, patches int, replay float64) Kernel {
	vecs := float64(n) * float64(patches)
	k := GEMM(int(vecs), rows, cols, 4, float64(b.hcfg.LLCSize), b.resident)
	k.Flops *= replay
	// Input quantization (scale scan + round) and offset removal ride on
	// top of the GEMM, once per vector.
	k.Flops += vecs * (2*float64(rows) + 6*float64(cols))
	// Quantized-input traffic: one int32 vector per (item, patch).
	k.Bytes += vecs * 4 * float64(rows)
	k.Bytes = b.roundLines(k.Bytes)
	return k
}

// roundLines rounds byte traffic up to whole cache lines.
func (b *Backend) roundLines(bytes float64) float64 {
	line := float64(b.hcfg.LineSize)
	return math.Ceil(bytes/line) * line
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
