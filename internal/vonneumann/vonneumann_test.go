package vonneumann

import (
	"math"
	"testing"

	"cimrev/internal/energy"
)

func TestCacheLevelValidation(t *testing.T) {
	if _, err := newCacheLevel(0, 1, 64); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := newCacheLevel(1024, 4, 63); err == nil {
		t.Error("non-power-of-two line accepted")
	}
	if _, err := newCacheLevel(128, 4, 64); err == nil {
		t.Error("fewer lines than ways accepted")
	}
}

func TestCacheLevelHitMissLRU(t *testing.T) {
	// Direct-mapped-ish tiny cache: 2 sets x 2 ways x 64B lines = 256B.
	c, err := newCacheLevel(256, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Lines 0, 2, 4 map to set 0 (line % 2 == 0).
	if c.access(0) {
		t.Error("cold access hit")
	}
	if !c.access(0) {
		t.Error("warm access missed")
	}
	c.access(2 * 64) // set 0 now holds lines 0, 2
	c.access(0)      // touch 0 so line 2 is LRU
	c.access(4 * 64) // evicts line 2
	if !c.access(0) {
		t.Error("line 0 should have survived (was MRU)")
	}
	if c.access(2 * 64) {
		t.Error("line 2 should have been evicted (was LRU)")
	}
}

func TestHierarchyLevels(t *testing.T) {
	h, err := NewHierarchy(DefaultHierarchy())
	if err != nil {
		t.Fatal(err)
	}
	// Cold access misses everywhere.
	level, cost := h.Access(0)
	if level != LevelDRAM {
		t.Errorf("cold access level = %v, want DRAM", level)
	}
	if cost.LatencyPS != energy.DRAMAccessLatencyPS {
		t.Errorf("DRAM latency = %d", cost.LatencyPS)
	}
	// Immediately warm in L1.
	level, cost = h.Access(0)
	if level != LevelL1 {
		t.Errorf("warm access level = %v, want L1", level)
	}
	if cost.LatencyPS != energy.L1AccessLatencyPS {
		t.Errorf("L1 latency = %d", cost.LatencyPS)
	}
}

func TestHierarchyCapacityMiss(t *testing.T) {
	cfg := DefaultHierarchy()
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Stream far more than L1 (32 KiB): revisiting the start must miss L1
	// but hit L2 (1 MiB holds it).
	span := uint64(256 << 10) // 256 KiB
	for a := uint64(0); a < span; a += 64 {
		h.Access(a)
	}
	level, _ := h.Access(0)
	if level != LevelL2 {
		t.Errorf("revisit after 256KiB stream = %v, want L2", level)
	}
}

func TestHierarchyHitRate(t *testing.T) {
	h, err := NewHierarchy(DefaultHierarchy())
	if err != nil {
		t.Fatal(err)
	}
	if got := h.HitRate(LevelL1); got != 0 {
		t.Errorf("empty hit rate = %g, want 0", got)
	}
	h.Access(0) // DRAM
	h.Access(0) // L1
	h.Access(0) // L1
	if got := h.HitRate(LevelL1); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("L1 hit rate = %g, want 2/3", got)
	}
	if got := h.HitRate(LevelDRAM); got != 1 {
		t.Errorf("DRAM-inclusive hit rate = %g, want 1", got)
	}
	stats, n := h.Stats()
	if n != 3 || stats[LevelL1] != 2 || stats[LevelDRAM] != 1 {
		t.Errorf("Stats = %v, %d", stats, n)
	}
}

func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{
		LevelL1: "L1", LevelL2: "L2", LevelLLC: "LLC", LevelDRAM: "DRAM",
	} {
		if got := l.String(); got != want {
			t.Errorf("Level(%d) = %q, want %q", l, got, want)
		}
	}
}

func TestMachineValidate(t *testing.T) {
	m := CPU()
	if err := m.Validate(); err != nil {
		t.Errorf("CPU invalid: %v", err)
	}
	if err := GPU().Validate(); err != nil {
		t.Errorf("GPU invalid: %v", err)
	}
	m.PeakFlops = 0
	if err := m.Validate(); err == nil {
		t.Error("zero flops accepted")
	}
	m = CPU()
	m.MemBandwidth = -1
	if err := m.Validate(); err == nil {
		t.Error("negative bandwidth accepted")
	}
	m = CPU()
	m.FlopEnergyPJ = -1
	if err := m.Validate(); err == nil {
		t.Error("negative energy accepted")
	}
}

func TestMachineRooflineComputeBound(t *testing.T) {
	m := CPU()
	// High operational intensity: compute-bound.
	k := Kernel{Flops: 1e9, Bytes: 1e3}
	c, err := m.Run(k)
	if err != nil {
		t.Fatal(err)
	}
	wantS := 1e9 / m.PeakFlops
	if math.Abs(c.Latency()-wantS)/wantS > 0.01 {
		t.Errorf("compute-bound latency = %g s, want %g s", c.Latency(), wantS)
	}
}

func TestMachineRooflineMemoryBound(t *testing.T) {
	m := CPU()
	// Low operational intensity: memory-bound.
	k := Kernel{Flops: 1e3, Bytes: 1e9}
	c, err := m.Run(k)
	if err != nil {
		t.Fatal(err)
	}
	wantS := 1e9 / m.MemBandwidth
	if math.Abs(c.Latency()-wantS)/wantS > 0.01 {
		t.Errorf("memory-bound latency = %g s, want %g s", c.Latency(), wantS)
	}
}

func TestMachineRunErrors(t *testing.T) {
	m := CPU()
	if _, err := m.Run(Kernel{Flops: -1}); err == nil {
		t.Error("negative flops accepted")
	}
	bad := Machine{}
	if _, err := bad.Run(Kernel{Flops: 1, Bytes: 1}); err == nil {
		t.Error("invalid machine ran")
	}
}

func TestMachineEnergyComposition(t *testing.T) {
	m := Machine{
		Name: "test", PeakFlops: 1e12, MemBandwidth: 1e12,
		FlopEnergyPJ: 2, ByteEnergyPJ: 3, StaticPowerW: 0,
	}
	c, err := m.Run(Kernel{Flops: 10, Bytes: 20})
	if err != nil {
		t.Fatal(err)
	}
	want := 10*2.0 + 20*3.0
	if math.Abs(c.EnergyPJ-want) > 1e-9 {
		t.Errorf("dynamic energy = %g, want %g", c.EnergyPJ, want)
	}
}

func TestMachineStaticPowerDominatesLongKernels(t *testing.T) {
	m := CPU()
	k := Kernel{Flops: 1e9, Bytes: 1e9} // ~20ms memory-bound on 50GB/s
	c, err := m.Run(k)
	if err != nil {
		t.Fatal(err)
	}
	staticPJ := m.StaticPowerW * c.Latency() * 1e12
	if staticPJ <= 0 || c.EnergyPJ <= staticPJ {
		t.Errorf("static %g pJ should be positive and below total %g pJ", staticPJ, c.EnergyPJ)
	}
}

func TestGPULaunchOverhead(t *testing.T) {
	g := GPU()
	c, err := g.Run(Kernel{Flops: 1, Bytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.LatencyPS < g.LaunchLatencyPS {
		t.Errorf("tiny kernel latency %d below launch overhead %d", c.LatencyPS, g.LaunchLatencyPS)
	}
}

func TestBytesPerFlopDecline(t *testing.T) {
	// The modern machines embody the Fig 2 problem: well under 1 byte/FLOP.
	if r := CPU().BytesPerFlop(); r >= 1 {
		t.Errorf("CPU bytes/flop = %g, want < 1", r)
	}
	if r := GPU().BytesPerFlop(); r >= 1 {
		t.Errorf("GPU bytes/flop = %g, want < 1", r)
	}
}

func TestGEMVKernel(t *testing.T) {
	// Non-resident: weights stream from DRAM.
	k := GEMV(1024, 1024, 4, 32<<20, false)
	wantFlops := 2.0 * 1024 * 1024
	if k.Flops != wantFlops {
		t.Errorf("flops = %g, want %g", k.Flops, wantFlops)
	}
	if k.Bytes < 4*1024*1024 {
		t.Errorf("streaming GEMV bytes = %g, want >= weight bytes", k.Bytes)
	}

	// Resident small matrix: only vector traffic.
	k = GEMV(64, 64, 4, 32<<20, true)
	if k.Bytes != 4*(64+64) {
		t.Errorf("resident GEMV bytes = %g, want vector-only %d", k.Bytes, 4*(64+64))
	}

	// Resident flag with oversized matrix still streams.
	k = GEMV(4096, 4096, 4, 1<<20, true)
	if k.Bytes < 4*4096*4096 {
		t.Errorf("oversized resident GEMV bytes = %g, want full stream", k.Bytes)
	}
}

func TestOperationalIntensity(t *testing.T) {
	k := Kernel{Flops: 100, Bytes: 50}
	if got := k.OperationalIntensity(); got != 2 {
		t.Errorf("OI = %g, want 2", got)
	}
	k.Bytes = 0
	if got := k.OperationalIntensity(); !math.IsInf(got, 1) {
		t.Errorf("OI with zero bytes = %g, want +Inf", got)
	}
}

func TestGEMVCrossoverShape(t *testing.T) {
	// The CPU's GEMV latency must grow superlinearly past the cache size:
	// that crossover is where CIM's latency win explodes (E4 shape).
	cpu := CPU()
	cache := float64(32 << 20)
	lat := func(n int) float64 {
		k := GEMV(n, n, 4, cache, true)
		c, err := cpu.Run(k)
		if err != nil {
			t.Fatal(err)
		}
		return c.Latency()
	}
	small := lat(512)     // resident
	large := lat(4096)    // streaming: 64MB > 32MB cache
	if large/small < 32 { // 64x flops growth, plus streaming penalty
		t.Errorf("streaming penalty too small: %g / %g = %g", large, small, large/small)
	}
}
