// Package virt implements Section IV.B of the paper, which maps Network
// Function Virtualization ideas onto CIM: "Dynamic hardware isolation"
// (partitions of units completely isolated from each other), "Quality of
// service" (provisioned interconnect so streams cannot interfere), and
// "Failover" (redirecting streams to other components with minimal
// impact).
package virt

import (
	"fmt"
	"sort"

	"cimrev/internal/cim"
	"cimrev/internal/interconnect"
	"cimrev/internal/packet"
	"cimrev/internal/security"
)

// Partition is a named, isolated group of fabric units.
type Partition struct {
	// Name identifies the partition.
	Name string
	// ID is the isolation domain handed to the Isolator.
	ID int
	// Units are the member addresses.
	Units []packet.Address
	// Stream is the QoS stream identity used for lane reservations.
	Stream uint32
	// Reserved is the reserved link fraction (0 = best effort).
	Reserved float64
}

// Manager carves a fabric into partitions.
type Manager struct {
	fabric     *cim.Fabric
	iso        *security.Isolator
	partitions map[string]*Partition
	nextID     int
	nextStream uint32
}

// NewManager wraps a fabric.
func NewManager(fabric *cim.Fabric) (*Manager, error) {
	if fabric == nil {
		return nil, fmt.Errorf("virt: nil fabric")
	}
	return &Manager{
		fabric:     fabric,
		iso:        security.NewIsolator(),
		partitions: make(map[string]*Partition),
		nextID:     1,
		nextStream: 1,
	}, nil
}

// Isolator exposes the manager's isolation domain checker.
func (m *Manager) Isolator() *security.Isolator { return m.iso }

// CreatePartition groups units into a new isolation domain. Every unit
// must exist and not belong to another partition.
func (m *Manager) CreatePartition(name string, units []packet.Address) (*Partition, error) {
	if name == "" {
		return nil, fmt.Errorf("virt: partition needs a name")
	}
	if len(units) == 0 {
		return nil, fmt.Errorf("virt: partition %q needs at least one unit", name)
	}
	if _, dup := m.partitions[name]; dup {
		return nil, fmt.Errorf("virt: partition %q already exists", name)
	}
	for _, a := range units {
		if _, err := m.fabric.Unit(a); err != nil {
			return nil, fmt.Errorf("virt: partition %q: %w", name, err)
		}
		if m.iso.PartitionOf(a) != 0 {
			return nil, fmt.Errorf("virt: unit %v already belongs to a partition", a)
		}
	}
	p := &Partition{
		Name:   name,
		ID:     m.nextID,
		Units:  append([]packet.Address(nil), units...),
		Stream: m.nextStream,
	}
	m.nextID++
	m.nextStream++
	for _, a := range units {
		m.iso.Assign(a, p.ID)
	}
	m.partitions[name] = p
	return p, nil
}

// Partition returns the named partition.
func (m *Manager) Partition(name string) (*Partition, error) {
	p, ok := m.partitions[name]
	if !ok {
		return nil, fmt.Errorf("virt: no partition %q", name)
	}
	return p, nil
}

// Partitions lists partitions sorted by name.
func (m *Manager) Partitions() []*Partition {
	out := make([]*Partition, 0, len(m.partitions))
	for _, p := range m.partitions {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DeletePartition dissolves a partition, returning its units to domain 0
// and releasing its lane reservations.
func (m *Manager) DeletePartition(name string) error {
	p, ok := m.partitions[name]
	if !ok {
		return fmt.Errorf("virt: no partition %q", name)
	}
	for _, a := range p.Units {
		m.iso.Assign(a, 0)
	}
	m.fabric.Mesh().ReleaseLane(p.Stream)
	delete(m.partitions, name)
	return nil
}

// AllowFlow permits directed traffic from partition a to partition b.
func (m *Manager) AllowFlow(a, b string) error {
	pa, err := m.Partition(a)
	if err != nil {
		return err
	}
	pb, err := m.Partition(b)
	if err != nil {
		return err
	}
	m.iso.Allow(pa.ID, pb.ID)
	return nil
}

// CheckTraffic returns nil if src may send to dst under current isolation.
func (m *Manager) CheckTraffic(src, dst packet.Address) error {
	return m.iso.Check(src, dst)
}

// ReserveBandwidth provisions fraction of the mesh links between every
// connected pair of the partition's units — the QoS guarantee. Fails (and
// rolls back) if any link lacks headroom.
func (m *Manager) ReserveBandwidth(name string, fraction float64) error {
	p, err := m.Partition(name)
	if err != nil {
		return err
	}
	mesh := m.fabric.Mesh()
	member := make(map[packet.Address]bool, len(p.Units))
	for _, a := range p.Units {
		member[a] = true
	}
	reservedAny := false
	for _, e := range m.fabric.Edges() {
		if !member[e.From] || !member[e.To] {
			continue
		}
		src := coordOf(m.fabric, e.From)
		dst := coordOf(m.fabric, e.To)
		if src == dst {
			continue
		}
		if err := mesh.ReserveLane(p.Stream, src, dst, fraction); err != nil {
			mesh.ReleaseLane(p.Stream)
			return fmt.Errorf("virt: reserve for %q: %w", name, err)
		}
		reservedAny = true
	}
	if !reservedAny {
		return fmt.Errorf("virt: partition %q has no cross-tile edges to reserve", name)
	}
	p.Reserved = fraction
	return nil
}

func coordOf(f *cim.Fabric, a packet.Address) interconnect.Coord {
	w := f.Config().MeshW
	t := int(a.Tile)
	return interconnect.Coord{X: t % w, Y: t / w}
}

// Failover redirects every edge through `from` onto `to` — the Section
// IV.B failover primitive ("switching to other components would have
// minimal impact"). Both units must be in the same partition.
func (m *Manager) Failover(name string, from, to packet.Address) error {
	p, err := m.Partition(name)
	if err != nil {
		return err
	}
	if m.iso.PartitionOf(from) != p.ID || m.iso.PartitionOf(to) != p.ID {
		return fmt.Errorf("virt: failover units must belong to partition %q", name)
	}
	preds, err := m.fabric.Predecessors(from)
	if err != nil {
		return err
	}
	succs, err := m.fabric.Successors(from)
	if err != nil {
		return err
	}
	for _, pr := range preds {
		if err := m.fabric.Disconnect(pr, from); err != nil {
			return err
		}
		if err := m.fabric.Connect(pr, to); err != nil {
			return err
		}
	}
	for _, s := range succs {
		if err := m.fabric.Disconnect(from, s); err != nil {
			return err
		}
		if s == to {
			continue
		}
		if err := m.fabric.Connect(to, s); err != nil {
			return err
		}
	}
	return nil
}
