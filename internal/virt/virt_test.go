package virt

import (
	"testing"

	"cimrev/internal/cim"
	"cimrev/internal/isa"
	"cimrev/internal/packet"
)

func addr(tile, unit uint16) packet.Address { return packet.Address{Tile: tile, Unit: unit} }

// testFabric builds a fabric with units on tiles 0..3.
func testFabric(t *testing.T) *cim.Fabric {
	t.Helper()
	f, err := cim.NewFabric(cim.DefaultConfig(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for tile := uint16(0); tile < 4; tile++ {
		for unit := uint16(0); unit < 2; unit++ {
			if _, err := f.AddUnit(addr(tile, unit), cim.KindCompute, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	return f
}

func TestCreatePartition(t *testing.T) {
	m, err := NewManager(testFabric(t))
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.CreatePartition("edge", []packet.Address{addr(0, 0), addr(1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if p.ID == 0 {
		t.Error("partition got the default domain 0")
	}
	got, err := m.Partition("edge")
	if err != nil || got != p {
		t.Errorf("Partition lookup = %v, %v", got, err)
	}
	if len(m.Partitions()) != 1 {
		t.Errorf("Partitions = %d, want 1", len(m.Partitions()))
	}
}

func TestCreatePartitionErrors(t *testing.T) {
	m, err := NewManager(testFabric(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewManager(nil); err == nil {
		t.Error("nil fabric accepted")
	}
	if _, err := m.CreatePartition("", []packet.Address{addr(0, 0)}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := m.CreatePartition("x", nil); err == nil {
		t.Error("empty unit list accepted")
	}
	if _, err := m.CreatePartition("x", []packet.Address{addr(9, 9)}); err == nil {
		t.Error("missing unit accepted")
	}
	if _, err := m.CreatePartition("a", []packet.Address{addr(0, 0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreatePartition("a", []packet.Address{addr(1, 0)}); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := m.CreatePartition("b", []packet.Address{addr(0, 0)}); err == nil {
		t.Error("unit reuse across partitions accepted")
	}
	if _, err := m.Partition("missing"); err == nil {
		t.Error("missing partition lookup succeeded")
	}
}

func TestIsolationBetweenPartitions(t *testing.T) {
	m, err := NewManager(testFabric(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreatePartition("a", []packet.Address{addr(0, 0), addr(0, 1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreatePartition("b", []packet.Address{addr(1, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckTraffic(addr(0, 0), addr(0, 1)); err != nil {
		t.Errorf("intra-partition traffic rejected: %v", err)
	}
	if err := m.CheckTraffic(addr(0, 0), addr(1, 0)); err == nil {
		t.Error("cross-partition traffic accepted")
	}
	if err := m.AllowFlow("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckTraffic(addr(0, 0), addr(1, 0)); err != nil {
		t.Errorf("allowed flow rejected: %v", err)
	}
	if err := m.CheckTraffic(addr(1, 0), addr(0, 0)); err == nil {
		t.Error("reverse flow accepted")
	}
	if err := m.AllowFlow("a", "missing"); err == nil {
		t.Error("flow to missing partition accepted")
	}
}

func TestDeletePartition(t *testing.T) {
	m, err := NewManager(testFabric(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreatePartition("a", []packet.Address{addr(0, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := m.DeletePartition("a"); err != nil {
		t.Fatal(err)
	}
	if err := m.DeletePartition("a"); err == nil {
		t.Error("double delete accepted")
	}
	// Units are reusable after deletion.
	if _, err := m.CreatePartition("b", []packet.Address{addr(0, 0)}); err != nil {
		t.Errorf("unit reuse after delete failed: %v", err)
	}
}

func TestReserveBandwidth(t *testing.T) {
	f := testFabric(t)
	// Cross-tile pipeline inside the partition.
	if err := f.Connect(addr(0, 0), addr(1, 0)); err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreatePartition("p", []packet.Address{addr(0, 0), addr(1, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := m.ReserveBandwidth("p", 0.5); err != nil {
		t.Fatal(err)
	}
	p, err := m.Partition("p")
	if err != nil {
		t.Fatal(err)
	}
	if p.Reserved != 0.5 {
		t.Errorf("Reserved = %g, want 0.5", p.Reserved)
	}
	// A partition with no cross-tile edges cannot reserve.
	if _, err := m.CreatePartition("q", []packet.Address{addr(2, 0), addr(2, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := m.ReserveBandwidth("q", 0.5); err == nil {
		t.Error("reservation without cross-tile edges accepted")
	}
	if err := m.ReserveBandwidth("missing", 0.5); err == nil {
		t.Error("reservation for missing partition accepted")
	}
}

func TestReserveBandwidthRollsBackOnFailure(t *testing.T) {
	f := testFabric(t)
	if err := f.Connect(addr(0, 0), addr(1, 0)); err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreatePartition("p", []packet.Address{addr(0, 0), addr(1, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := m.ReserveBandwidth("p", 0.8); err != nil {
		t.Fatal(err)
	}
	// Second reservation exceeds the 90% cap and must fail cleanly.
	if err := m.ReserveBandwidth("p", 0.5); err == nil {
		t.Error("over-subscription accepted")
	}
}

func TestFailover(t *testing.T) {
	f := testFabric(t)
	// src -> worker -> sink, with standby in the same partition.
	src, worker, standby, sink := addr(0, 0), addr(1, 0), addr(1, 1), addr(2, 0)
	if err := f.Configure(worker, isa.FuncReLU, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Configure(standby, isa.FuncReLU, nil); err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]packet.Address{{src, worker}, {worker, sink}} {
		if err := f.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	m, err := NewManager(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreatePartition("p", []packet.Address{src, worker, standby, sink}); err != nil {
		t.Fatal(err)
	}
	if err := m.Failover("p", worker, standby); err != nil {
		t.Fatal(err)
	}
	// Stream flows src -> standby -> sink now.
	if err := f.Stream(src, []float64{-2, 3}); err != nil {
		t.Fatal(err)
	}
	out, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	res := out[sink]
	if len(res) != 1 {
		t.Fatalf("sink results = %d, want 1", len(res))
	}
	if res[0][0] != 0 || res[0][1] != 3 {
		t.Errorf("failover output = %v, want [0 3]", res[0])
	}
	// Old worker is fully detached.
	succs, err := f.Successors(worker)
	if err != nil {
		t.Fatal(err)
	}
	if len(succs) != 0 {
		t.Errorf("failed worker still has successors: %v", succs)
	}
}

func TestFailoverValidation(t *testing.T) {
	f := testFabric(t)
	m, err := NewManager(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreatePartition("p", []packet.Address{addr(0, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := m.Failover("missing", addr(0, 0), addr(1, 0)); err == nil {
		t.Error("failover in missing partition accepted")
	}
	if err := m.Failover("p", addr(0, 0), addr(1, 0)); err == nil {
		t.Error("failover to unit outside partition accepted")
	}
}
