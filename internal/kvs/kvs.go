// Package kvs is the key-value-store substrate for the paper's "KVSs
// (persistency layer)" application class (Appendix A). It models the
// persistence property Section II.B attributes to CIM: "application state
// can be constantly captured over time and upon reboot or restart (due to
// failure) it will be available to continue computation" — a Store
// checkpoints to a snapshot and restores from it after a crash.
package kvs

import (
	"fmt"
	"sync"
)

// Store is an in-memory KV store with snapshot persistence. Safe for
// concurrent use.
type Store struct {
	mu   sync.RWMutex
	data map[string][]byte

	gets, puts, deletes int64
	bytesMoved          int64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{data: make(map[string][]byte)}
}

// Put stores value under key (copying the value).
func (s *Store) Put(key string, value []byte) error {
	if key == "" {
		return fmt.Errorf("kvs: empty key")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data[key] = append([]byte(nil), value...)
	s.puts++
	s.bytesMoved += int64(len(key) + len(value))
	return nil
}

// Get returns a copy of the value for key.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.data[key]
	s.gets++
	if !ok {
		return nil, false
	}
	s.bytesMoved += int64(len(key) + len(v))
	return append([]byte(nil), v...), true
}

// Delete removes key, reporting whether it existed.
func (s *Store) Delete(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.data[key]
	if ok {
		delete(s.data, key)
		s.deletes++
	}
	return ok
}

// Len returns the number of keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Stats returns operation counts and total bytes moved — the inputs to the
// KVS workload characterization (low compute, high data, low operational
// intensity).
func (s *Store) Stats() (gets, puts, deletes, bytesMoved int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gets, s.puts, s.deletes, s.bytesMoved
}

// Snapshot captures the full state — the "constantly captured" application
// state of Section II.B.
type Snapshot struct {
	data map[string][]byte
}

// Checkpoint returns a consistent snapshot.
func (s *Store) Checkpoint() *Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap := &Snapshot{data: make(map[string][]byte, len(s.data))}
	for k, v := range s.data {
		snap.data[k] = append([]byte(nil), v...)
	}
	return snap
}

// Restore replaces the store's contents with the snapshot — recovery
// "upon reboot or restart (due to failure)".
func (s *Store) Restore(snap *Snapshot) error {
	if snap == nil {
		return fmt.Errorf("kvs: nil snapshot")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = make(map[string][]byte, len(snap.data))
	for k, v := range snap.data {
		s.data[k] = append([]byte(nil), v...)
	}
	return nil
}
