package kvs

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGetDelete(t *testing.T) {
	s := NewStore()
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, ok := s.Get("k")
	if !ok || string(v) != "v" {
		t.Errorf("Get = %q, %v", v, ok)
	}
	if !s.Delete("k") {
		t.Error("Delete reported missing")
	}
	if s.Delete("k") {
		t.Error("second Delete reported present")
	}
	if _, ok := s.Get("k"); ok {
		t.Error("deleted key still present")
	}
	if err := s.Put("", nil); err == nil {
		t.Error("empty key accepted")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := NewStore()
	if err := s.Put("k", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	v, _ := s.Get("k")
	v[0] = 'x'
	again, _ := s.Get("k")
	if string(again) != "abc" {
		t.Error("Get leaked internal buffer")
	}
}

func TestPutCopiesValue(t *testing.T) {
	s := NewStore()
	val := []byte("abc")
	if err := s.Put("k", val); err != nil {
		t.Fatal(err)
	}
	val[0] = 'x'
	v, _ := s.Get("k")
	if string(v) != "abc" {
		t.Error("Put aliased caller buffer")
	}
}

func TestStats(t *testing.T) {
	s := NewStore()
	if err := s.Put("key1", []byte("value")); err != nil {
		t.Fatal(err)
	}
	s.Get("key1")
	s.Get("missing")
	s.Delete("key1")
	gets, puts, deletes, moved := s.Stats()
	if gets != 2 || puts != 1 || deletes != 1 {
		t.Errorf("stats = %d gets, %d puts, %d deletes", gets, puts, deletes)
	}
	if moved != int64(len("key1")+len("value"))*2 {
		t.Errorf("bytesMoved = %d", moved)
	}
}

func TestCheckpointRestore(t *testing.T) {
	s := NewStore()
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Checkpoint()

	// "Crash": mutate state badly.
	s.Delete("k3")
	if err := s.Put("k5", []byte("corrupted")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("junk", []byte("junk")); err != nil {
		t.Fatal(err)
	}

	if err := s.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 10 {
		t.Errorf("Len after restore = %d, want 10", s.Len())
	}
	v, ok := s.Get("k3")
	if !ok || v[0] != 3 {
		t.Error("k3 not restored")
	}
	v, _ = s.Get("k5")
	if v[0] != 5 {
		t.Error("k5 not restored to checkpoint value")
	}
	if _, ok := s.Get("junk"); ok {
		t.Error("post-checkpoint key survived restore")
	}
	if err := s.Restore(nil); err == nil {
		t.Error("nil snapshot accepted")
	}
}

func TestSnapshotIsolatedFromStore(t *testing.T) {
	s := NewStore()
	if err := s.Put("k", []byte("a")); err != nil {
		t.Fatal(err)
	}
	snap := s.Checkpoint()
	if err := s.Put("k", []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(snap); err != nil {
		t.Fatal(err)
	}
	v, _ := s.Get("k")
	if string(v) != "a" {
		t.Errorf("restored value = %q, want a", v)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i)
			for j := 0; j < 50; j++ {
				if err := s.Put(key, []byte{byte(j)}); err != nil {
					t.Error(err)
					return
				}
				s.Get(key)
			}
		}(i)
	}
	wg.Wait()
	if s.Len() != 16 {
		t.Errorf("Len = %d, want 16", s.Len())
	}
}

// Property: a Put followed by Get returns the same bytes.
func TestPutGetRoundTripProperty(t *testing.T) {
	s := NewStore()
	f := func(key string, val []byte) bool {
		if key == "" {
			return true
		}
		if err := s.Put(key, val); err != nil {
			return false
		}
		got, ok := s.Get(key)
		if !ok {
			return false
		}
		return string(got) == string(val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
