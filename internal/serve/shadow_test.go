package serve

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cimrev/internal/dpe"
	"cimrev/internal/energy"
	"cimrev/internal/nn"
	"cimrev/internal/parallel"
)

// twoNets builds two same-topology MLPs with different weights.
func twoNets(t *testing.T, sizes ...int) (*nn.Network, *nn.Network) {
	t.Helper()
	a, err := nn.NewMLP("net-a", sizes, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := nn.NewMLP("net-b", sizes, rand.New(rand.NewSource(22)))
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

// TestShadowSwapZeroDowntime is the acceptance test for shadow
// reprogramming: clients hammer the server continuously while the weights
// are swapped several times; not a single request may fail or be dropped,
// and after the final swap the serving engine's outputs are bit-identical
// to a fresh engine programmed with the new weights.
func TestShadowSwapZeroDowntime(t *testing.T) {
	t.Cleanup(func() { parallel.SetWidth(0) })
	parallel.SetWidth(4)

	netA, netB := twoNets(t, 32, 24, 10)
	pair, _, err := NewShadowPair(testEngineConfig(), netA)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(pair, WithBatch(8, time.Millisecond), WithQueueBound(1024))
	if err != nil {
		t.Fatal(err)
	}

	inputs := testInputs(32, 32, 17)
	stop := make(chan struct{})
	var served, failed atomic.Int64
	var wg sync.WaitGroup
	const clients = 8
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, _, err := srv.Infer(inputs[(c+i)%len(inputs)])
				switch err {
				case nil:
					served.Add(1)
				case ErrOverloaded:
					// Backpressure is load shedding, not failure; but it
					// should not trigger at this offered load.
					failed.Add(1)
				default:
					failed.Add(1)
					t.Errorf("client %d: %v", c, err)
					return
				}
			}
		}(c)
	}

	// Let traffic build, then swap weights back and forth under load.
	time.Sleep(20 * time.Millisecond)
	const swaps = 4
	for k := 0; k < swaps; k++ {
		target := netB
		if k%2 == 1 {
			target = netA
		}
		visible, hidden, err := pair.Reprogram(target)
		if err != nil {
			t.Fatal(err)
		}
		if visible.LatencyPS != energy.EDRAMAccessLatencyPS {
			t.Errorf("swap %d: visible latency %d ps, want one buffer swap (%d ps)",
				k, visible.LatencyPS, energy.EDRAMAccessLatencyPS)
		}
		if hidden.LatencyPS <= visible.LatencyPS {
			t.Errorf("swap %d: hidden latency %d ps not above visible %d ps",
				k, hidden.LatencyPS, visible.LatencyPS)
		}
		if visible.EnergyPJ != hidden.EnergyPJ {
			t.Errorf("swap %d: visible energy %g != hidden energy %g (energy is paid in full)",
				k, visible.EnergyPJ, hidden.EnergyPJ)
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	srv.Close()

	if pair.Swaps() != swaps {
		t.Errorf("Swaps() = %d, want %d", pair.Swaps(), swaps)
	}
	if served.Load() == 0 {
		t.Fatal("no requests served during the swap storm")
	}
	if failed.Load() != 0 {
		t.Errorf("%d of %d requests failed or were shed across %d swaps; want 0",
			failed.Load(), served.Load()+failed.Load(), swaps)
	}

	// Post-swap equivalence: the last swap installed netA (swaps is even),
	// so the live engine must now be bit-identical to a fresh engine
	// loaded with netA.
	fresh, err := dpe.New(testEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Load(netA); err != nil {
		t.Fatal(err)
	}
	for i, in := range inputs[:8] {
		got, _, err := pair.InferBatch([][]float64{in})
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := fresh.Infer(in)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if got[0][j] != want[j] {
				t.Fatalf("post-swap input %d output[%d] = %g, want %g (bit-identical to fresh engine)",
					i, j, got[0][j], want[j])
			}
		}
	}
}

// TestShadowNoisyBitIdentical runs the post-swap equivalence check with
// analog read noise enabled: Reprogram installs a freshly loaded engine
// whose counter-based noise sequence restarts at zero, so its k-th
// inference is bit-identical to the k-th inference of a fresh engine with
// the same seed and weights.
func TestShadowNoisyBitIdentical(t *testing.T) {
	cfg := testEngineConfig()
	cfg.Crossbar.Functional = false
	cfg.Crossbar.ReadNoise = 0.02
	cfg.Seed = 99

	netA, netB := twoNets(t, 24, 16, 8)
	pair, _, err := NewShadowPair(cfg, netA)
	if err != nil {
		t.Fatal(err)
	}
	inputs := testInputs(6, 24, 23)
	// Serve some traffic on netA to advance the live engine's noise
	// sequence — the swap must still hand over a sequence-zero engine.
	if _, _, err := pair.InferBatch(inputs); err != nil {
		t.Fatal(err)
	}
	if _, _, err := pair.Reprogram(netB); err != nil {
		t.Fatal(err)
	}

	fresh, err := dpe.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Load(netB); err != nil {
		t.Fatal(err)
	}
	for i, in := range inputs {
		got, gotCost, err := pair.InferBatch([][]float64{in})
		if err != nil {
			t.Fatal(err)
		}
		want, wantCost, err := fresh.Infer(in)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if got[0][j] != want[j] {
				t.Fatalf("noisy post-swap input %d output[%d] = %g, want %g", i, j, got[0][j], want[j])
			}
		}
		if gotCost.EnergyPJ != wantCost.EnergyPJ {
			t.Fatalf("noisy post-swap input %d energy %g != fresh %g", i, gotCost.EnergyPJ, wantCost.EnergyPJ)
		}
	}
}

// TestShadowHiddenCostAccumulates: the ledger of off-critical-path write
// cost must sum across swaps.
func TestShadowHiddenCostAccumulates(t *testing.T) {
	netA, netB := twoNets(t, 16, 8)
	pair, _, err := NewShadowPair(testEngineConfig(), netA)
	if err != nil {
		t.Fatal(err)
	}
	if pair.HiddenCost() != energy.Zero {
		t.Fatalf("hidden cost before any swap = %v, want zero", pair.HiddenCost())
	}
	_, h1, err := pair.Reprogram(netB)
	if err != nil {
		t.Fatal(err)
	}
	_, h2, err := pair.Reprogram(netA)
	if err != nil {
		t.Fatal(err)
	}
	total := pair.HiddenCost()
	if total.LatencyPS != h1.LatencyPS+h2.LatencyPS {
		t.Errorf("hidden latency ledger %d, want %d", total.LatencyPS, h1.LatencyPS+h2.LatencyPS)
	}
	if total.EnergyPJ != h1.EnergyPJ+h2.EnergyPJ {
		t.Errorf("hidden energy ledger %g, want %g", total.EnergyPJ, h1.EnergyPJ+h2.EnergyPJ)
	}
}

// TestShadowTopologyChange: because the standby is programmed with a full
// Load, a swap may install a *different* topology — live model replacement
// is not limited to same-shape weight refreshes.
func TestShadowTopologyChange(t *testing.T) {
	netA := func() *nn.Network {
		n, err := nn.NewMLP("small", []int{16, 8}, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		return n
	}()
	netWide, err := nn.NewMLP("wide", []int{16, 32, 8}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	pair, _, err := NewShadowPair(testEngineConfig(), netA)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := pair.Reprogram(netWide); err != nil {
		t.Fatalf("topology-changing swap rejected: %v", err)
	}
	out, _, err := pair.InferBatch(testInputs(1, 16, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(out[0]) != 8 {
		t.Fatalf("output length %d, want 8", len(out[0]))
	}
	if got := pair.Live().Network().Name; got != "wide" {
		t.Errorf("live network = %q, want \"wide\"", got)
	}
}

// TestShadowReprogramError: a failed standby load must leave the live
// engine serving the old weights and report a descriptive error.
func TestShadowReprogramError(t *testing.T) {
	netA, _ := twoNets(t, 16, 8)
	pair, _, err := NewShadowPair(testEngineConfig(), netA)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := pair.Reprogram(nil); err == nil {
		t.Fatal("nil network accepted")
	}
	if pair.Swaps() != 0 {
		t.Errorf("failed reprogram counted a swap")
	}
	out, _, err := pair.InferBatch(testInputs(1, 16, 3))
	if err != nil || len(out) != 1 {
		t.Errorf("live engine damaged by failed reprogram: %v", err)
	}
	if got := pair.Live().Network().Name; got != "net-a" {
		t.Errorf("live network = %q, want \"net-a\"", got)
	}
}

// TestShadowServeParallelWidths runs the zero-downtime swap under the
// worker pool at widths 1/4/16 — the race target pins this suite.
func TestShadowServeParallelWidths(t *testing.T) {
	t.Cleanup(func() { parallel.SetWidth(0) })
	netA, netB := twoNets(t, 24, 16, 8)
	for _, width := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("width=%d", width), func(t *testing.T) {
			parallel.SetWidth(width)
			pair, _, err := NewShadowPair(testEngineConfig(), netA)
			if err != nil {
				t.Fatal(err)
			}
			srv, err := New(pair, WithBatch(4, time.Millisecond), WithQueueBound(256))
			if err != nil {
				t.Fatal(err)
			}
			inputs := testInputs(24, 24, 31)
			var wg sync.WaitGroup
			for i := range inputs {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					if _, _, err := srv.Infer(inputs[i]); err != nil {
						t.Errorf("request %d: %v", i, err)
					}
				}(i)
			}
			if _, _, err := pair.Reprogram(netB); err != nil {
				t.Error(err)
			}
			wg.Wait()
			srv.Close()
		})
	}
}
