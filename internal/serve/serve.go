// Package serve is the request-level inference serving pipeline: it fans
// millions of small, independent Infer calls into the fast batched kernels
// underneath (dpe.Engine.InferBatch / dpe.Cluster.InferBatch), which is
// where the Section VI throughput claims actually live. "Breaking
// Barriers" (Crafton et al., PAPERS.md) makes the point sharply: CIM
// throughput is dominated by array *utilization*, not raw array speed, and
// a serial request stream leaves the crossbars idle between requests.
//
// The pipeline has three pieces:
//
//   - An adaptive micro-batcher (Server): requests enter a bounded ingress
//     queue; a dispatcher drains it into batches, flushing when MaxBatch
//     requests have accumulated or MaxDelay has elapsed since the batch
//     opened — whichever comes first. Light load pays one deadline of extra
//     latency at most; heavy load amortizes toward full batches.
//   - Explicit backpressure and cancellation: the ingress queue holds at
//     most QueueBound requests. Past the high-water mark, Submit fails fast
//     with ErrOverloaded instead of growing an unbounded queue. Submit also
//     honors context.Context: a caller that cancels stops waiting with
//     ErrCanceled, and the flush loop skips requests whose context died
//     while they sat in the queue — abandoned work is shed, not computed.
//   - Observability: per-request wall-clock latency lands in a lock-free
//     metrics.Histogram (p50/p95/p99 via HistogramSnapshot.Quantile), the
//     simulated cost algebra (internal/energy) keeps running totals of
//     virtual busy time and energy, and an optional obs.Tracer records one
//     "serve.flush" span per batch with the whole engine/crossbar span tree
//     beneath it (docs/OBSERVABILITY.md). All metric handles are interned
//     once at construction; the request hot path never does a registry
//     lookup.
//
// Zero-downtime weight updates are the fourth piece, in shadow.go: a
// ShadowPair programs a standby engine while the live one keeps serving,
// then swaps atomically — the write-asymmetry hiding of Section VI realized
// as double-buffering at the serving layer. See docs/SERVING.md.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cimrev/internal/energy"
	"cimrev/internal/metrics"
	"cimrev/internal/obs"
)

// Backend is the batched inference kernel the pipeline feeds. Both
// *dpe.Engine and *dpe.Cluster (and *ShadowPair and *Breaker, which wrap
// engines) satisfy it.
type Backend interface {
	// InferBatch runs the batch, returning one output per input plus the
	// simulated cost of the whole batch. It must be safe for the pipeline
	// to call from its dispatcher goroutine while other goroutines read
	// engine statistics.
	InferBatch(inputs [][]float64) ([][]float64, energy.Cost, error)
}

// ctxBackend is the optional traced variant of Backend. Backends that
// implement it (dpe.Engine, dpe.Cluster, ShadowPair, Breaker) have their
// span tree linked under the server's "serve.flush" spans; plain Backends
// still work, they just appear as leaf flushes in a trace.
type ctxBackend interface {
	InferBatchCtx(pc obs.Ctx, inputs [][]float64) ([][]float64, energy.Cost, error)
}

// keyedBackend is the optional request-keyed-noise variant of Backend
// (dpe.Engine, ShadowPair, Breaker). Requests submitted via SubmitKeyed
// carry their own noise sequence numbers down to the engine, making their
// outputs a pure function of (engine config, key, input) — independent of
// batch composition, queue interleaving, or which engine of a fleet serves
// them (docs/CLUSTER.md). Backends without it serve keyed requests through
// the plain path, ignoring the keys.
type keyedBackend interface {
	InferBatchKeyedCtx(pc obs.Ctx, seqs []uint64, inputs [][]float64) ([][]float64, energy.Cost, error)
}

// ErrOverloaded is returned by Submit when the ingress queue is at its
// high-water mark. The request was NOT enqueued; the caller owns the retry
// policy. This is the backpressure contract: past QueueBound the server
// sheds load instead of queueing without bound.
var ErrOverloaded = errors.New("serve: ingress queue full (backpressure)")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("serve: server closed")

// ErrCanceled is returned by Submit when the request's context is
// *canceled* before a result arrives. The request may still be skipped (if
// its batch had not flushed yet) or its result discarded (if it had);
// either way the caller has stopped paying for it. A context whose
// *deadline* fired gets ErrDeadlineExceeded instead — the two causes are
// distinct sentinels and are counted separately in the registry
// (serve.canceled vs serve.deadline_exceeded).
var ErrCanceled = errors.New("serve: request canceled")

// ErrDeadlineExceeded is returned by Submit when the request's context
// deadline fires before a result arrives — the latency-budget signal, as
// opposed to ErrCanceled (the caller walked away). Expired requests are
// shed at whatever stage the expiry is detected: before enqueue, while
// queued (skipped before the batch flushes, so dead work never reaches the
// crossbars), or mid-batch (the device result is discarded). The per-stage
// counters serve.deadline_pre_enqueue / serve.deadline_queued /
// serve.deadline_mid_batch account for where deadlines fire; see
// docs/RESILIENCE.md.
var ErrDeadlineExceeded = errors.New("serve: request deadline exceeded")

// expiryError wraps a context failure cause in the matching typed
// sentinel: ErrDeadlineExceeded when the deadline fired, ErrCanceled for a
// plain cancellation.
func expiryError(cause error) error {
	if errors.Is(cause, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrDeadlineExceeded, cause)
	}
	return fmt.Errorf("%w: %w", ErrCanceled, cause)
}

// request is one enqueued inference. keyed requests carry their own noise
// sequence number down to a keyedBackend.
type request struct {
	ctx   context.Context
	in    []float64
	seq   uint64
	keyed bool
	start time.Time
	resp  chan response
}

// response carries the result back to the waiting caller.
type response struct {
	out  []float64
	cost energy.Cost
	err  error
}

// serverMetrics holds the server's interned metric handles, resolved once
// at construction so the request and flush hot paths touch only lock-free
// atomics.
type serverMetrics struct {
	rejected    *metrics.Counter
	canceled    *metrics.Counter
	requests    *metrics.Counter
	batches     *metrics.Counter
	batchErrors *metrics.Counter
	errors      *metrics.Counter
	unhealthy   *metrics.Counter
	latencyNS   *metrics.Histogram
	batchSize   *metrics.Histogram
	energyPJ    *metrics.Gauge

	// Deadline accounting (docs/RESILIENCE.md): deadline is the cause
	// total (the sibling of canceled); the three stage counters record
	// where the expiry was detected — before enqueue, while queued (shed
	// before flush), or mid-batch (device result discarded).
	deadline           *metrics.Counter
	deadlinePreEnqueue *metrics.Counter
	deadlineQueued     *metrics.Counter
	deadlineMidBatch   *metrics.Counter
}

func newServerMetrics(reg *metrics.Registry) serverMetrics {
	return serverMetrics{
		rejected:    reg.Counter("serve.rejected"),
		canceled:    reg.Counter("serve.canceled"),
		requests:    reg.Counter("serve.requests"),
		batches:     reg.Counter("serve.batches"),
		batchErrors: reg.Counter("serve.batch_errors"),
		errors:      reg.Counter("serve.errors"),
		unhealthy:   reg.Counter("serve.unhealthy"),
		latencyNS:   reg.Histogram("serve.latency_ns"),
		batchSize:   reg.Histogram("serve.batch_size"),
		energyPJ:    reg.Gauge("serve.energy_pj"),

		deadline:           reg.Counter("serve.deadline_exceeded"),
		deadlinePreEnqueue: reg.Counter("serve.deadline_pre_enqueue"),
		deadlineQueued:     reg.Counter("serve.deadline_queued"),
		deadlineMidBatch:   reg.Counter("serve.deadline_mid_batch"),
	}
}

// expire classifies a context failure, counts the cause (serve.canceled vs
// serve.deadline_exceeded), and returns the typed error the caller gets.
func (m *serverMetrics) expire(cause error) error {
	if errors.Is(cause, context.DeadlineExceeded) {
		m.deadline.Inc()
	} else {
		m.canceled.Inc()
	}
	return expiryError(cause)
}

// Server is the micro-batching inference frontend. Construct with New;
// the zero value is not usable.
type Server struct {
	cfg     Config
	backend Backend
	cbe     ctxBackend   // non-nil iff backend implements InferBatchCtx
	kbe     keyedBackend // non-nil iff backend implements InferBatchKeyedCtx
	reg     *metrics.Registry
	met     serverMetrics
	tracer  *obs.Tracer

	// ingressMu guards the closed flag and the queue send against Close:
	// Submit holds it shared while enqueueing; Close holds it exclusively
	// while closing the channel, so no send can race the close.
	ingressMu sync.RWMutex
	closed    bool
	queue     chan *request

	dispatcherDone chan struct{}

	// simPS accumulates the simulated latency of every flushed batch:
	// the virtual time the device spent serving. Energy accumulates in
	// the "serve.energy_pj" gauge.
	simPS atomic.Int64
}

// New starts a server over backend, configured by Default() refined with
// opts. The dispatcher goroutine runs until Close.
func New(backend Backend, opts ...Option) (*Server, error) {
	if backend == nil {
		return nil, fmt.Errorf("serve: nil backend")
	}
	cfg := build(opts)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Server{
		cfg:            cfg,
		backend:        backend,
		reg:            reg,
		met:            newServerMetrics(reg),
		tracer:         cfg.Tracer,
		queue:          make(chan *request, cfg.QueueBound),
		dispatcherDone: make(chan struct{}),
	}
	s.cbe, _ = backend.(ctxBackend)
	s.kbe, _ = backend.(keyedBackend)
	go s.dispatch()
	return s, nil
}

// Registry returns the server's metrics registry.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// QueueDepth returns how many requests currently wait in the ingress
// queue. It is a point-in-time reading, safe to call concurrently — the
// fleet router's least-loaded policy polls it on every routing decision.
func (s *Server) QueueDepth() int { return len(s.queue) }

// SimTimePS returns the accumulated simulated serving time in picoseconds:
// the sum of every flushed batch's critical-path latency. Requests per
// simulated second is requests / (SimTimePS * 1e-12).
func (s *Server) SimTimePS() int64 { return s.simPS.Load() }

// Infer submits one inference with a background context; see Submit.
func (s *Server) Infer(in []float64) ([]float64, energy.Cost, error) {
	return s.Submit(context.Background(), in)
}

// Submit submits one inference and blocks until its batch completes or ctx
// is done. The returned cost is the request's share of its batch: the full
// batch latency (the request waited for the whole batch) and 1/n of the
// batch energy. The caller must not mutate in until Submit returns.
//
// Submit fails fast with ErrOverloaded when the ingress queue is at its
// bound and with ErrClosed after Close; both leave the request unqueued.
// If ctx is canceled while the request waits, Submit returns ErrCanceled
// (wrapping ctx.Err()): a request still queued is skipped at flush time,
// one already mid-batch completes on the device but its result is
// discarded.
func (s *Server) Submit(ctx context.Context, in []float64) ([]float64, energy.Cost, error) {
	return s.submit(&request{ctx: ctx, in: in})
}

// SubmitDeadline is Submit with a per-request latency budget: the request
// runs under ctx bounded by deadline d (d <= 0 means no budget beyond
// ctx's own). A request that cannot complete inside its budget is shed at
// whatever stage the expiry is detected — before enqueue, while queued, or
// mid-batch — and the caller gets ErrDeadlineExceeded. See
// docs/RESILIENCE.md for the deadline-propagation contract.
func (s *Server) SubmitDeadline(ctx context.Context, d time.Duration, in []float64) ([]float64, energy.Cost, error) {
	if d <= 0 {
		return s.Submit(ctx, in)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithTimeout(ctx, d)
	defer cancel()
	return s.Submit(ctx, in)
}

// SubmitKeyed is Submit with a caller-owned noise sequence number: the
// request's analog read noise is drawn from the stream for seq instead of
// the backend engine's internal inference counter, so the output is a pure
// function of (engine config, seq, input) — identical no matter how the
// batcher groups it or which engine of a fleet serves it. Requires a
// backend implementing InferBatchKeyedCtx (dpe.Engine, ShadowPair,
// Breaker); over a plain Backend the key is ignored and SubmitKeyed
// behaves exactly like Submit. See docs/CLUSTER.md for the determinism
// contract this enables.
func (s *Server) SubmitKeyed(ctx context.Context, seq uint64, in []float64) ([]float64, energy.Cost, error) {
	return s.submit(&request{ctx: ctx, in: in, seq: seq, keyed: s.kbe != nil})
}

func (s *Server) submit(req *request) ([]float64, energy.Cost, error) {
	ctx := req.ctx
	if ctx == nil {
		ctx = context.Background()
		req.ctx = ctx
	}
	if err := ctx.Err(); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			s.met.deadlinePreEnqueue.Inc()
		}
		return nil, energy.Zero, s.met.expire(err)
	}
	req.start = time.Now()
	req.resp = make(chan response, 1)

	s.ingressMu.RLock()
	if s.closed {
		s.ingressMu.RUnlock()
		return nil, energy.Zero, ErrClosed
	}
	select {
	case s.queue <- req:
		s.ingressMu.RUnlock()
	default:
		s.ingressMu.RUnlock()
		s.met.rejected.Inc()
		return nil, energy.Zero, ErrOverloaded
	}

	select {
	case r := <-req.resp:
		s.met.latencyNS.Observe(float64(time.Since(req.start).Nanoseconds()))
		if r.err != nil {
			return nil, energy.Zero, r.err
		}
		return r.out, r.cost, nil
	case <-ctx.Done():
		// The dispatcher will still send into the buffered resp channel
		// (or skip the request at flush); nobody is listening, nothing
		// leaks.
		return nil, energy.Zero, s.met.expire(ctx.Err())
	}
}

// Close stops accepting requests, drains everything already queued
// (in-flight callers get real responses, not errors), and waits for the
// dispatcher to exit. Close is idempotent.
func (s *Server) Close() {
	s.ingressMu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.ingressMu.Unlock()
	<-s.dispatcherDone
}

// dispatch is the batcher loop: block for the first request of a batch,
// then collect until MaxBatch or MaxDelay, then flush.
func (s *Server) dispatch() {
	defer close(s.dispatcherDone)
	for {
		first, ok := <-s.queue
		if !ok {
			return
		}
		batch := s.collect(first)
		s.flush(batch)
	}
}

// collect gathers a batch starting from first: it returns when MaxBatch
// requests are in hand, when MaxDelay has elapsed since the batch opened,
// or when the queue closes (draining flushes the remainder).
func (s *Server) collect(first *request) []*request {
	batch := make([]*request, 1, s.cfg.MaxBatch)
	batch[0] = first
	if s.cfg.MaxBatch == 1 {
		return batch
	}
	timer := time.NewTimer(s.cfg.MaxDelay)
	defer timer.Stop()
	for len(batch) < s.cfg.MaxBatch {
		select {
		case req, ok := <-s.queue:
			if !ok {
				return batch
			}
			batch = append(batch, req)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

// shedExpired splits out requests whose context died while they waited in
// the queue: each gets a typed expiry response (ErrDeadlineExceeded or
// ErrCanceled, into its buffered channel — the caller usually already left)
// and is excluded from the device batch, so dead work never reaches the
// crossbars. Only the queued-stage counter is bumped here: the *cause*
// counters (serve.canceled / serve.deadline_exceeded) are the caller's,
// incremented once in submit when the error surfaces.
func (s *Server) shedExpired(batch []*request) []*request {
	kept := batch[:0]
	for _, req := range batch {
		if err := req.ctx.Err(); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				s.met.deadlineQueued.Inc()
			}
			req.resp <- response{err: expiryError(err)}
			continue
		}
		kept = append(kept, req)
	}
	return kept
}

// inferBatch invokes the backend for one flush group. Keyed groups (every
// request stamped with its own noise sequence number, keyedBackend
// available) go through InferBatchKeyedCtx; everything else takes the
// plain path, traced when the backend supports it.
func (s *Server) inferBatch(sp obs.Ctx, batch []*request, inputs [][]float64, keyed bool) ([][]float64, energy.Cost, error) {
	if keyed {
		seqs := make([]uint64, len(batch))
		for i, req := range batch {
			seqs[i] = req.seq
		}
		return s.kbe.InferBatchKeyedCtx(sp, seqs, inputs)
	}
	if s.cbe != nil {
		return s.cbe.InferBatchCtx(sp, inputs)
	}
	return s.backend.InferBatch(inputs)
}

// flush runs one collected batch through the backend. When the batch mixes
// keyed and unkeyed requests (possible only if callers mix Submit and
// SubmitKeyed on one server), it splits into two device batches so keyed
// requests never consume engine-counter sequence numbers out from under
// unkeyed ones.
func (s *Server) flush(batch []*request) {
	batch = s.shedExpired(batch)
	if len(batch) == 0 {
		return
	}
	if s.kbe == nil {
		s.flushGroup(batch, false)
		return
	}
	var keyed, plain []*request
	for _, req := range batch {
		if req.keyed {
			keyed = append(keyed, req)
		} else {
			plain = append(plain, req)
		}
	}
	if len(plain) > 0 {
		s.flushGroup(plain, false)
	}
	if len(keyed) > 0 {
		s.flushGroup(keyed, true)
	}
}

// flushGroup runs one device batch through the backend and distributes
// results. A batch-level error falls back to per-request execution so that
// one bad request (wrong input length, say) cannot poison its batchmates:
// only the offending request sees its error. Each group is one root span
// ("serve.flush") when tracing is enabled.
func (s *Server) flushGroup(batch []*request, keyed bool) {
	inputs := make([][]float64, len(batch))
	for i, req := range batch {
		inputs[i] = req.in
	}
	sp := s.tracer.Root("serve.flush")
	outs, cost, err := s.inferBatch(sp, batch, inputs, keyed)
	if sp.Active() {
		sp.Annotate("batch", float64(len(batch)))
		if err != nil {
			sp.Annotate("error", 1)
		}
	}
	sp.End(cost)
	if err != nil {
		if errors.Is(err, ErrUnhealthy) {
			// Health-driven shed: a tripped breaker (or an unhealthy
			// backend) fails every request identically, so the
			// per-request fallback below would just hammer it N more
			// times. Shed the whole batch with the typed error and let
			// callers decide whether to retry, reroute, or alarm.
			s.met.unhealthy.Add(int64(len(batch)))
			for _, req := range batch {
				req.resp <- response{err: err}
			}
			return
		}
		s.met.batchErrors.Inc()
		s.flushIndividually(batch, keyed)
		return
	}
	s.met.batches.Inc()
	s.met.requests.Add(int64(len(batch)))
	s.met.batchSize.Observe(float64(len(batch)))
	s.met.energyPJ.Add(cost.EnergyPJ)
	s.simPS.Add(cost.LatencyPS)
	share := energy.Cost{LatencyPS: cost.LatencyPS, EnergyPJ: cost.EnergyPJ / float64(len(batch))}
	for i, req := range batch {
		if errors.Is(req.ctx.Err(), context.DeadlineExceeded) {
			// The deadline fired while the request was on the device: the
			// result lands in the buffered channel but the caller has
			// already surfaced ErrDeadlineExceeded.
			s.met.deadlineMidBatch.Inc()
		}
		req.resp <- response{out: outs[i], cost: share}
	}
}

// flushIndividually retries a failed batch one request at a time,
// isolating the poison pill. Healthy requests pay single-request batch
// cost; failing ones get their own error. Keyed requests keep their keys,
// so the retried output is bit-identical to the batched one.
func (s *Server) flushIndividually(batch []*request, keyed bool) {
	for _, req := range batch {
		sp := s.tracer.Root("serve.flush_single")
		outs, cost, err := s.inferBatch(sp, []*request{req}, [][]float64{req.in}, keyed)
		sp.End(cost)
		if err != nil {
			s.met.errors.Inc()
			req.resp <- response{err: fmt.Errorf("serve: request failed: %w", err)}
			continue
		}
		s.met.batches.Inc()
		s.met.requests.Inc()
		s.met.batchSize.Observe(1)
		s.met.energyPJ.Add(cost.EnergyPJ)
		s.simPS.Add(cost.LatencyPS)
		if errors.Is(req.ctx.Err(), context.DeadlineExceeded) {
			s.met.deadlineMidBatch.Inc()
		}
		req.resp <- response{out: outs[0], cost: cost}
	}
}
