// Package serve is the request-level inference serving pipeline: it fans
// millions of small, independent Infer calls into the fast batched kernels
// underneath (dpe.Engine.InferBatch / dpe.Cluster.InferBatch), which is
// where the Section VI throughput claims actually live. "Breaking
// Barriers" (Crafton et al., PAPERS.md) makes the point sharply: CIM
// throughput is dominated by array *utilization*, not raw array speed, and
// a serial request stream leaves the crossbars idle between requests.
//
// The pipeline has three pieces:
//
//   - An adaptive micro-batcher (Server): requests enter a bounded ingress
//     queue; a dispatcher drains it into batches, flushing when MaxBatch
//     requests have accumulated or MaxDelay has elapsed since the batch
//     opened — whichever comes first. Light load pays one deadline of extra
//     latency at most; heavy load amortizes toward full batches.
//   - Explicit backpressure: the ingress queue holds at most QueueBound
//     requests. Past the high-water mark, Infer fails fast with
//     ErrOverloaded instead of growing an unbounded queue — callers see the
//     overload and can shed or retry, and memory stays bounded no matter
//     the offered load.
//   - Observability: per-request wall-clock latency lands in a lock-free
//     metrics.Histogram (p50/p95/p99 via HistogramSnapshot.Quantile), and
//     the simulated cost algebra (internal/energy) keeps running totals of
//     virtual busy time and energy, so the benchmark in cmd/cimserve can
//     report both wall-clock and simulated throughput.
//
// Zero-downtime weight updates are the fourth piece, in shadow.go: a
// ShadowPair programs a standby engine while the live one keeps serving,
// then swaps atomically — the write-asymmetry hiding of Section VI realized
// as double-buffering at the serving layer. See docs/SERVING.md.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cimrev/internal/energy"
	"cimrev/internal/metrics"
)

// Backend is the batched inference kernel the pipeline feeds. Both
// *dpe.Engine and *dpe.Cluster (and *ShadowPair, which wraps two engines)
// satisfy it.
type Backend interface {
	// InferBatch runs the batch, returning one output per input plus the
	// simulated cost of the whole batch. It must be safe for the pipeline
	// to call from its dispatcher goroutine while other goroutines read
	// engine statistics.
	InferBatch(inputs [][]float64) ([][]float64, energy.Cost, error)
}

// ErrOverloaded is returned by Infer when the ingress queue is at its
// high-water mark. The request was NOT enqueued; the caller owns the retry
// policy. This is the backpressure contract: past QueueBound the server
// sheds load instead of queueing without bound.
var ErrOverloaded = errors.New("serve: ingress queue full (backpressure)")

// ErrClosed is returned by Infer after Close.
var ErrClosed = errors.New("serve: server closed")

// Config configures a Server.
type Config struct {
	// MaxBatch is the flush threshold: a batch is dispatched as soon as
	// it holds this many requests. Must be >= 1.
	MaxBatch int
	// MaxDelay is the flush deadline: an open batch is dispatched at most
	// this long after its first request arrived, even if under-full.
	// Must be > 0.
	MaxDelay time.Duration
	// QueueBound is the ingress queue's high-water mark: the maximum
	// number of requests waiting for dispatch. Must be >= 1. Requests
	// beyond it are rejected with ErrOverloaded.
	QueueBound int
	// Registry receives serving metrics. Nil selects a private registry
	// (always safe; reachable via Server.Registry).
	Registry *metrics.Registry
}

// Validate reports whether the configuration is usable. Like the
// crossbar's ADCBits=0 rejection, degenerate serving parameters fail fast
// at construction with a descriptive error instead of deadlocking or
// spinning later.
func (c Config) Validate() error {
	switch {
	case c.MaxBatch < 1:
		return fmt.Errorf("serve: MaxBatch must be >= 1, got %d (a batcher that never fills never flushes)", c.MaxBatch)
	case c.MaxDelay <= 0:
		return fmt.Errorf("serve: MaxDelay must be positive, got %v (a zero deadline would busy-spin the dispatcher)", c.MaxDelay)
	case c.QueueBound < 1:
		return fmt.Errorf("serve: QueueBound must be >= 1, got %d (a zero-length ingress queue rejects every request)", c.QueueBound)
	}
	return nil
}

// DefaultConfig returns a serving configuration tuned for the benchmark
// workloads: batches up to 64, a 2ms flush deadline, and a 4096-deep
// ingress queue.
func DefaultConfig() Config {
	return Config{MaxBatch: 64, MaxDelay: 2 * time.Millisecond, QueueBound: 4096}
}

// request is one enqueued inference.
type request struct {
	in    []float64
	start time.Time
	resp  chan response
}

// response carries the result back to the waiting caller.
type response struct {
	out  []float64
	cost energy.Cost
	err  error
}

// Server is the micro-batching inference frontend. Construct with New;
// the zero value is not usable.
type Server struct {
	cfg     Config
	backend Backend
	reg     *metrics.Registry

	// ingressMu guards the closed flag and the queue send against Close:
	// Infer holds it shared while enqueueing; Close holds it exclusively
	// while closing the channel, so no send can race the close.
	ingressMu sync.RWMutex
	closed    bool
	queue     chan *request

	dispatcherDone chan struct{}

	// simPS accumulates the simulated latency of every flushed batch:
	// the virtual time the device spent serving. Energy accumulates in
	// the "serve.energy_pj" gauge.
	simPS atomic.Int64
}

// New starts a server over backend. The dispatcher goroutine runs until
// Close.
func New(backend Backend, cfg Config) (*Server, error) {
	if backend == nil {
		return nil, fmt.Errorf("serve: nil backend")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Server{
		cfg:            cfg,
		backend:        backend,
		reg:            reg,
		queue:          make(chan *request, cfg.QueueBound),
		dispatcherDone: make(chan struct{}),
	}
	go s.dispatch()
	return s, nil
}

// Registry returns the server's metrics registry.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// SimTimePS returns the accumulated simulated serving time in picoseconds:
// the sum of every flushed batch's critical-path latency. Requests per
// simulated second is requests / (SimTimePS * 1e-12).
func (s *Server) SimTimePS() int64 { return s.simPS.Load() }

// Infer submits one inference and blocks until its batch completes. The
// returned cost is the request's share of its batch: the full batch
// latency (the request waited for the whole batch) and 1/n of the batch
// energy. The caller must not mutate in until Infer returns.
//
// Infer fails fast with ErrOverloaded when the ingress queue is at its
// bound and with ErrClosed after Close; both leave the request unqueued.
func (s *Server) Infer(in []float64) ([]float64, energy.Cost, error) {
	req := &request{in: in, start: time.Now(), resp: make(chan response, 1)}

	s.ingressMu.RLock()
	if s.closed {
		s.ingressMu.RUnlock()
		return nil, energy.Zero, ErrClosed
	}
	select {
	case s.queue <- req:
		s.ingressMu.RUnlock()
	default:
		s.ingressMu.RUnlock()
		s.reg.Counter("serve.rejected").Inc()
		return nil, energy.Zero, ErrOverloaded
	}

	r := <-req.resp
	s.reg.Histogram("serve.latency_ns").Observe(float64(time.Since(req.start).Nanoseconds()))
	if r.err != nil {
		return nil, energy.Zero, r.err
	}
	return r.out, r.cost, nil
}

// Close stops accepting requests, drains everything already queued
// (in-flight callers get real responses, not errors), and waits for the
// dispatcher to exit. Close is idempotent.
func (s *Server) Close() {
	s.ingressMu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.ingressMu.Unlock()
	<-s.dispatcherDone
}

// dispatch is the batcher loop: block for the first request of a batch,
// then collect until MaxBatch or MaxDelay, then flush.
func (s *Server) dispatch() {
	defer close(s.dispatcherDone)
	for {
		first, ok := <-s.queue
		if !ok {
			return
		}
		batch := s.collect(first)
		s.flush(batch)
	}
}

// collect gathers a batch starting from first: it returns when MaxBatch
// requests are in hand, when MaxDelay has elapsed since the batch opened,
// or when the queue closes (draining flushes the remainder).
func (s *Server) collect(first *request) []*request {
	batch := make([]*request, 1, s.cfg.MaxBatch)
	batch[0] = first
	if s.cfg.MaxBatch == 1 {
		return batch
	}
	timer := time.NewTimer(s.cfg.MaxDelay)
	defer timer.Stop()
	for len(batch) < s.cfg.MaxBatch {
		select {
		case req, ok := <-s.queue:
			if !ok {
				return batch
			}
			batch = append(batch, req)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

// flush runs one batch through the backend and distributes results. A
// batch-level error falls back to per-request execution so that one bad
// request (wrong input length, say) cannot poison its batchmates: only the
// offending request sees its error.
func (s *Server) flush(batch []*request) {
	inputs := make([][]float64, len(batch))
	for i, req := range batch {
		inputs[i] = req.in
	}
	outs, cost, err := s.backend.InferBatch(inputs)
	if err != nil {
		if errors.Is(err, ErrUnhealthy) {
			// Health-driven shed: a tripped breaker (or an unhealthy
			// backend) fails every request identically, so the
			// per-request fallback below would just hammer it N more
			// times. Shed the whole batch with the typed error and let
			// callers decide whether to retry, reroute, or alarm.
			s.reg.Counter("serve.unhealthy").Add(int64(len(batch)))
			for _, req := range batch {
				req.resp <- response{err: err}
			}
			return
		}
		s.reg.Counter("serve.batch_errors").Inc()
		s.flushIndividually(batch)
		return
	}
	s.reg.Counter("serve.batches").Inc()
	s.reg.Counter("serve.requests").Add(int64(len(batch)))
	s.reg.Histogram("serve.batch_size").Observe(float64(len(batch)))
	s.reg.Gauge("serve.energy_pj").Add(cost.EnergyPJ)
	s.simPS.Add(cost.LatencyPS)
	share := energy.Cost{LatencyPS: cost.LatencyPS, EnergyPJ: cost.EnergyPJ / float64(len(batch))}
	for i, req := range batch {
		req.resp <- response{out: outs[i], cost: share}
	}
}

// flushIndividually retries a failed batch one request at a time,
// isolating the poison pill. Healthy requests pay single-request batch
// cost; failing ones get their own error.
func (s *Server) flushIndividually(batch []*request) {
	for _, req := range batch {
		outs, cost, err := s.backend.InferBatch([][]float64{req.in})
		if err != nil {
			s.reg.Counter("serve.errors").Inc()
			req.resp <- response{err: fmt.Errorf("serve: request failed: %w", err)}
			continue
		}
		s.reg.Counter("serve.batches").Inc()
		s.reg.Counter("serve.requests").Inc()
		s.reg.Histogram("serve.batch_size").Observe(1)
		s.reg.Gauge("serve.energy_pj").Add(cost.EnergyPJ)
		s.simPS.Add(cost.LatencyPS)
		req.resp <- response{out: outs[0], cost: cost}
	}
}
