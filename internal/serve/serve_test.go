package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cimrev/internal/dpe"
	"cimrev/internal/energy"
	"cimrev/internal/nn"
	"cimrev/internal/parallel"
)

// testEngineConfig is a small functional-mode DPE for fast tests.
func testEngineConfig() dpe.Config {
	cfg := dpe.DefaultConfig()
	cfg.Crossbar.Rows, cfg.Crossbar.Cols = 64, 64
	return cfg
}

func testMLP(t *testing.T, sizes ...int) *nn.Network {
	t.Helper()
	net, err := nn.NewMLP("serve-test", sizes, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func loadedEngine(t *testing.T, net *nn.Network) *dpe.Engine {
	t.Helper()
	eng, err := dpe.New(testEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Load(net); err != nil {
		t.Fatal(err)
	}
	return eng
}

func testInputs(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	inputs := make([][]float64, n)
	for i := range inputs {
		inputs[i] = make([]float64, dim)
		for j := range inputs[i] {
			inputs[i][j] = rng.Float64()*2 - 1
		}
	}
	return inputs
}

func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []Config{
		{MaxBatch: 0, MaxDelay: time.Millisecond, QueueBound: 1},
		{MaxBatch: -3, MaxDelay: time.Millisecond, QueueBound: 1},
		{MaxBatch: 1, MaxDelay: 0, QueueBound: 1},
		{MaxBatch: 1, MaxDelay: -time.Second, QueueBound: 1},
		{MaxBatch: 1, MaxDelay: time.Millisecond, QueueBound: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d (%+v) accepted", i, cfg)
		}
	}
	// New surfaces validation and nil-backend errors.
	if _, err := New(nil); err == nil {
		t.Error("nil backend accepted")
	}
	net := testMLP(t, 16, 8)
	eng := loadedEngine(t, net)
	if _, err := New(eng, WithConfig(Config{MaxBatch: 0, MaxDelay: time.Millisecond, QueueBound: 1})); err == nil {
		t.Error("invalid config accepted by New")
	}
}

// TestServeMatchesDirectInfer: every output served through the batcher is
// bit-identical to the same input run directly through a fresh engine —
// batching must not change results in functional (noise-free) mode.
func TestServeMatchesDirectInfer(t *testing.T) {
	t.Cleanup(func() { parallel.SetWidth(0) })
	for _, width := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("width=%d", width), func(t *testing.T) {
			parallel.SetWidth(width)
			net := testMLP(t, 32, 24, 10)
			eng := loadedEngine(t, net)
			srv, err := New(eng, WithBatch(8, 5*time.Millisecond), WithQueueBound(256))
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			const n = 64
			inputs := testInputs(n, 32, 7)
			outs := make([][]float64, n)
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					out, cost, err := srv.Infer(inputs[i])
					if err != nil {
						t.Errorf("request %d: %v", i, err)
						return
					}
					if cost.LatencyPS <= 0 || cost.EnergyPJ <= 0 {
						t.Errorf("request %d: degenerate cost %v", i, cost)
					}
					outs[i] = out
				}(i)
			}
			wg.Wait()

			ref := loadedEngine(t, net)
			for i := 0; i < n; i++ {
				want, _, err := ref.Infer(inputs[i])
				if err != nil {
					t.Fatal(err)
				}
				if len(outs[i]) != len(want) {
					t.Fatalf("request %d: output length %d != %d", i, len(outs[i]), len(want))
				}
				for j := range want {
					if outs[i][j] != want[j] {
						t.Fatalf("request %d output[%d] = %g, want %g (bit-identical)", i, j, outs[i][j], want[j])
					}
				}
			}

			s := srv.Registry().Snapshot()
			if s.Counters["serve.requests"] != n {
				t.Errorf("serve.requests = %d, want %d", s.Counters["serve.requests"], n)
			}
			if s.Counters["serve.batches"] == 0 {
				t.Error("no batches recorded")
			}
			if got := s.Histograms["serve.latency_ns"].Count; got != n {
				t.Errorf("latency observations = %d, want %d", got, n)
			}
			if srv.SimTimePS() <= 0 {
				t.Error("no simulated serving time accumulated")
			}
		})
	}
}

// blockingBackend blocks inside InferBatch until released; it lets tests
// fill the ingress queue deterministically.
type blockingBackend struct {
	entered chan struct{} // receives one token per InferBatch entry
	release chan struct{}
	batches [][]int // recorded batch sizes (len of each batch)
	mu      sync.Mutex
}

func (b *blockingBackend) InferBatch(inputs [][]float64) ([][]float64, energy.Cost, error) {
	b.entered <- struct{}{}
	<-b.release
	b.mu.Lock()
	sizes := make([]int, len(inputs))
	for i := range inputs {
		sizes[i] = len(inputs[i])
	}
	b.batches = append(b.batches, sizes)
	b.mu.Unlock()
	outs := make([][]float64, len(inputs))
	for i := range outs {
		outs[i] = []float64{float64(i)}
	}
	return outs, energy.Cost{LatencyPS: 1000, EnergyPJ: float64(len(inputs))}, nil
}

// TestBackpressure: once the dispatcher is stuck in a flush and the queue
// holds QueueBound requests, further Infers are rejected with
// ErrOverloaded — the queue must never grow past its bound.
func TestBackpressure(t *testing.T) {
	const bound = 4
	bk := &blockingBackend{entered: make(chan struct{}, 64), release: make(chan struct{})}
	srv, err := New(bk, WithBatch(1, time.Millisecond), WithQueueBound(bound))
	if err != nil {
		t.Fatal(err)
	}

	// First request: dispatcher picks it up and blocks in the backend.
	firstDone := make(chan error, 1)
	go func() {
		_, _, err := srv.Infer([]float64{0})
		firstDone <- err
	}()
	<-bk.entered // dispatcher is now stuck inside InferBatch

	// Fill the queue to its bound with parked requests.
	var parked sync.WaitGroup
	parkedErrs := make([]error, bound)
	for i := 0; i < bound; i++ {
		parked.Add(1)
		go func(i int) {
			defer parked.Done()
			_, _, err := srv.Infer([]float64{float64(i + 1)})
			parkedErrs[i] = err
		}(i)
	}
	// Wait until all bound requests are actually enqueued.
	deadline := time.After(5 * time.Second)
	for len(srv.queue) < bound {
		select {
		case <-deadline:
			t.Fatalf("queue never filled: %d/%d", len(srv.queue), bound)
		default:
			time.Sleep(time.Millisecond)
		}
	}

	// The queue is at its high-water mark: the next request must be shed.
	if _, _, err := srv.Infer([]float64{99}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Infer past high-water mark = %v, want ErrOverloaded", err)
	}
	if got := srv.Registry().Counter("serve.rejected").Value(); got != 1 {
		t.Errorf("serve.rejected = %d, want 1", got)
	}

	// Release the backend; everything parked must complete successfully.
	close(bk.release)
	go func() { // drain entry tokens for the remaining batches
		for range bk.entered {
		}
	}()
	if err := <-firstDone; err != nil {
		t.Errorf("first request: %v", err)
	}
	parked.Wait()
	for i, err := range parkedErrs {
		if err != nil {
			t.Errorf("parked request %d: %v", i, err)
		}
	}
	srv.Close()
	close(bk.entered)
}

// countingBackend records batch sizes without blocking.
type countingBackend struct {
	mu    sync.Mutex
	sizes []int
	delay time.Duration
}

func (b *countingBackend) InferBatch(inputs [][]float64) ([][]float64, energy.Cost, error) {
	if b.delay > 0 {
		time.Sleep(b.delay)
	}
	b.mu.Lock()
	b.sizes = append(b.sizes, len(inputs))
	b.mu.Unlock()
	outs := make([][]float64, len(inputs))
	for i := range outs {
		outs[i] = []float64{0}
	}
	return outs, energy.Cost{LatencyPS: 10, EnergyPJ: 1}, nil
}

// TestDeadlineFlush: a lone request must not wait for a full batch — the
// MaxDelay deadline flushes it.
func TestDeadlineFlush(t *testing.T) {
	bk := &countingBackend{}
	srv, err := New(bk, WithBatch(1<<20, 10*time.Millisecond), WithQueueBound(16))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	start := time.Now()
	if _, _, err := srv.Infer([]float64{1}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline flush took %v", elapsed)
	}
	bk.mu.Lock()
	defer bk.mu.Unlock()
	if len(bk.sizes) != 1 || bk.sizes[0] != 1 {
		t.Errorf("batch sizes = %v, want [1]", bk.sizes)
	}
}

// TestMaxBatchCap: no dispatched batch may exceed MaxBatch, and every
// request must be served exactly once.
func TestMaxBatchCap(t *testing.T) {
	const maxBatch, n = 4, 64
	bk := &countingBackend{delay: 2 * time.Millisecond} // lets the queue pile up
	srv, err := New(bk, WithBatch(maxBatch, 50*time.Millisecond), WithQueueBound(n))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var served atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := srv.Infer([]float64{1}); err == nil {
				served.Add(1)
			}
		}()
	}
	wg.Wait()
	srv.Close()
	if served.Load() != n {
		t.Errorf("served %d/%d requests", served.Load(), n)
	}
	bk.mu.Lock()
	defer bk.mu.Unlock()
	total := 0
	for _, sz := range bk.sizes {
		if sz > maxBatch {
			t.Errorf("batch of %d exceeds MaxBatch %d", sz, maxBatch)
		}
		total += sz
	}
	if total != n {
		t.Errorf("batches cover %d requests, want %d", total, n)
	}
}

// TestCloseDrains: Close completes queued work (no dropped requests) and
// subsequent Infers fail fast with ErrClosed.
func TestCloseDrains(t *testing.T) {
	net := testMLP(t, 16, 8)
	eng := loadedEngine(t, net)
	srv, err := New(eng, WithBatch(4, 20*time.Millisecond), WithQueueBound(64))
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	inputs := testInputs(n, 16, 5)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = srv.Infer(inputs[i])
		}(i)
	}
	wg.Wait()
	srv.Close()
	for i, err := range errs {
		if err != nil {
			t.Errorf("request %d: %v", i, err)
		}
	}
	if _, _, err := srv.Infer(inputs[0]); !errors.Is(err, ErrClosed) {
		t.Errorf("Infer after Close = %v, want ErrClosed", err)
	}
	srv.Close() // idempotent
}

// TestPoisonPillIsolated: a malformed request (wrong input length) fails
// alone; its batchmates still get correct answers via the per-request
// retry path.
func TestPoisonPillIsolated(t *testing.T) {
	net := testMLP(t, 16, 8)
	eng := loadedEngine(t, net)
	srv, err := New(eng, WithBatch(4, 30*time.Millisecond), WithQueueBound(64))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	good := testInputs(3, 16, 9)
	bad := []float64{1, 2, 3} // wrong length
	var wg sync.WaitGroup
	var badErr error
	goodErrs := make([]error, len(good))
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, badErr = srv.Infer(bad)
	}()
	for i := range good {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, goodErrs[i] = srv.Infer(good[i])
		}(i)
	}
	wg.Wait()
	if badErr == nil {
		t.Error("malformed request succeeded")
	}
	for i, err := range goodErrs {
		if err != nil {
			t.Errorf("well-formed request %d poisoned: %v", i, err)
		}
	}
}

// TestServeClusterBackend: the batcher runs unchanged over a multi-board
// dpe.Cluster — the Backend seam covers both deployment shapes.
func TestServeClusterBackend(t *testing.T) {
	net := testMLP(t, 24, 16, 8)
	cl, err := dpe.NewCluster(testEngineConfig(), 2, 5, 12.5e9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Load(net); err != nil {
		t.Fatal(err)
	}
	srv, err := New(cl, WithBatch(8, 10*time.Millisecond), WithQueueBound(128))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	inputs := testInputs(16, 24, 13)
	var wg sync.WaitGroup
	for i := range inputs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, _, err := srv.Infer(inputs[i])
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			if len(out) != 8 {
				t.Errorf("request %d: output length %d", i, len(out))
			}
		}(i)
	}
	wg.Wait()
}
