// Shadow-engine reprogramming: zero-downtime weight updates.
//
// Section VI names memristor write asymmetry — writes are orders of
// magnitude slower than reads — as the scaling challenge, and proposes
// hiding it behind ongoing computation. dpe.Engine.Reprogram(hide=true)
// models that claim as a cost-algebra identity (visible latency collapses
// to one buffer swap). ShadowPair *mechanizes* it: two engines, one live
// and one standby; weight updates program the standby at full write cost
// while the live engine keeps serving every request, then an atomic
// pointer swap puts the new weights on the serving path. The only
// reprogramming cost a request can ever observe is the swap itself.
package serve

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"cimrev/internal/dpe"
	"cimrev/internal/energy"
	"cimrev/internal/nn"
	"cimrev/internal/obs"
)

// guardedEngine pairs an engine with a reader/writer gate: inference holds
// the read side, reprogramming holds the write side. The write side is
// only ever taken on the standby engine, so the live path never blocks on
// a writer — the gate exists to keep a *returning* standby (an engine that
// was live moments ago and may still have in-flight batches) from being
// programmed under a running inference.
type guardedEngine struct {
	mu  sync.RWMutex
	eng *dpe.Engine
}

// ShadowPair is a double-buffered pair of DPE engines implementing
// Backend. Inference always runs on the live engine; Reprogram programs
// the standby and swaps. Both engines share one configuration and seed, so
// the engine installed by a swap is bit-identical — outputs, noise stream,
// and costs — to a fresh engine programmed with the new network.
type ShadowPair struct {
	cfg dpe.Config

	// reprogramMu serializes Reprogram calls; swaps are rare and total
	// ordering keeps the live/standby invariant trivial.
	reprogramMu sync.Mutex
	live        atomic.Pointer[guardedEngine]
	standby     *guardedEngine

	swaps atomic.Int64
	// hiddenPS / hiddenPJ accumulate the full (off-critical-path) cost of
	// every shadow reprogram, so the hidden work stays visible to the
	// energy ledger even though no request ever waits for it.
	hiddenPS atomic.Int64
	hiddenPJ atomic.Uint64 // float64 bits, CAS-added
}

// NewShadowPair builds the pair and programs net into the live engine,
// returning the initial programming cost. The standby engine is created
// (same config and seed) but left unprogrammed until the first Reprogram.
func NewShadowPair(cfg dpe.Config, net *nn.Network) (*ShadowPair, energy.Cost, error) {
	liveEng, err := dpe.New(cfg)
	if err != nil {
		return nil, energy.Zero, err
	}
	standbyEng, err := dpe.New(cfg)
	if err != nil {
		return nil, energy.Zero, err
	}
	cost, err := liveEng.Load(net)
	if err != nil {
		return nil, energy.Zero, fmt.Errorf("serve: shadow pair initial load: %w", err)
	}
	p := &ShadowPair{cfg: cfg, standby: &guardedEngine{eng: standbyEng}}
	p.live.Store(&guardedEngine{eng: liveEng})
	return p, cost, nil
}

// Live returns the engine currently on the serving path. Useful for
// statistics; do not program it.
func (p *ShadowPair) Live() *dpe.Engine { return p.live.Load().eng }

// Swaps returns how many reprogram-and-swap cycles have completed.
func (p *ShadowPair) Swaps() int64 { return p.swaps.Load() }

// HiddenCost returns the accumulated full cost of all shadow reprograms:
// the write latency and energy that were paid off the critical path. The
// energy ledger needs this; no request ever waited for it.
func (p *ShadowPair) HiddenCost() energy.Cost {
	return energy.Cost{
		LatencyPS: p.hiddenPS.Load(),
		EnergyPJ:  loadFloat(&p.hiddenPJ),
	}
}

// InferBatch serves the batch from the live engine. It takes the engine's
// read gate for the duration, so a subsequent swap cannot reprogram this
// engine until the batch retires. Requests that race a swap may be served
// by either weight version — the swap is the linearization point.
func (p *ShadowPair) InferBatch(inputs [][]float64) ([][]float64, energy.Cost, error) {
	return p.InferBatchCtx(obs.Ctx{}, inputs)
}

// InferBatchCtx is InferBatch with tracing: the live engine's
// dpe.infer_batch span tree links under pc.
func (p *ShadowPair) InferBatchCtx(pc obs.Ctx, inputs [][]float64) ([][]float64, energy.Cost, error) {
	g := p.live.Load()
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.eng.InferBatchCtx(pc, inputs)
}

// InferBatchKeyedCtx serves the batch from the live engine with
// caller-owned noise sequence numbers (dpe.Engine.InferBatchKeyed). Because
// both engines of the pair share one Config and seed, keyed outputs are
// bit-identical across swaps — and across every other pair built from the
// same Config, which is what lets a fleet of pairs fan requests out without
// disturbing per-request determinism (docs/CLUSTER.md).
func (p *ShadowPair) InferBatchKeyedCtx(pc obs.Ctx, seqs []uint64, inputs [][]float64) ([][]float64, energy.Cost, error) {
	g := p.live.Load()
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.eng.InferBatchKeyedCtx(pc, seqs, inputs)
}

// Wear returns the live engine's lifetime cell-write count, read under its
// gate so the count cannot race a reprogram of a just-retired standby. The
// fleet router's wear-aware policy polls this between batches.
func (p *ShadowPair) Wear() int64 {
	g := p.live.Load()
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.eng.Wear()
}

// Health scans the engine currently on the serving path, holding its read
// gate so the scan cannot race a reprogram of a just-retired standby. This
// is the safe form for liveness endpoints (cimserve -listen /healthz):
// Live().HealthCheck() without the gate could observe a tile mid-program.
func (p *ShadowPair) Health() dpe.Health {
	g := p.live.Load()
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.eng.HealthCheck()
}

// Reprogram programs net into the standby engine at full write cost while
// the live engine keeps serving, then atomically swaps the pair. It
// returns the visible cost (one buffer-swap latency on the critical path,
// but the full programming energy — energy is spent regardless of where
// the latency hides) and the hidden cost (the full programming cost that
// overlapped with serving).
//
// The standby is programmed with Load, not Reprogram: the swapped-in
// engine is indistinguishable from a freshly constructed engine loaded
// with net — its noise sequence restarts at zero — and the new network may
// even have a different topology than the old one.
//
// When device-fault injection is active (dpe.Config.Faults), Reprogram is
// health-aware: if program-and-verify left the standby with lost columns,
// it runs one Repair pass in place — still off the critical path, still
// charged to the hidden ledger — before swapping. A standby that remains
// unhealthy after repair is NEVER swapped in: Reprogram returns an error
// wrapping ErrUnhealthy, the live engine keeps serving the old weights,
// and the hidden cost of the failed attempt stays on the books (the energy
// was spent even though no swap happened).
func (p *ShadowPair) Reprogram(net *nn.Network) (visible, hidden energy.Cost, err error) {
	return p.ReprogramCtx(obs.Ctx{}, net)
}

// ReprogramCtx is Reprogram with tracing: one "serve.shadow_swap" span
// covering the standby programming, any repair pass, and the swap. The
// span's cost is the *hidden* (full) programming cost — the work that
// overlapped with serving — because that is where the simulated energy
// went; the visible swap latency is an annotation (visible_ps).
func (p *ShadowPair) ReprogramCtx(pc obs.Ctx, net *nn.Network) (visible, hidden energy.Cost, err error) {
	sp := pc.Child("serve.shadow_swap")
	visible, hidden, err = p.reprogram(sp, net)
	if sp.Active() {
		sp.Annotate("visible_ps", float64(visible.LatencyPS))
		if err != nil {
			sp.Annotate("error", 1)
		}
	}
	sp.End(hidden)
	return visible, hidden, err
}

func (p *ShadowPair) reprogram(sp obs.Ctx, net *nn.Network) (visible, hidden energy.Cost, err error) {
	p.reprogramMu.Lock()
	defer p.reprogramMu.Unlock()

	sb := p.standby
	// Wait out any batch still running on the standby from before the
	// previous swap, then program it. The live engine serves throughout.
	sb.mu.Lock()
	cost, err := sb.eng.LoadCtx(sp, net)
	if err != nil {
		sb.mu.Unlock()
		return energy.Zero, energy.Zero, fmt.Errorf("serve: shadow reprogram: %w", err)
	}
	// Repair-before-swap: transient write failures re-roll on the repair
	// epoch and usually clear; stuck-cell losses past the spare budget do
	// not, and block the swap.
	if h := sb.eng.HealthCheck(); !h.Healthy() {
		rcost, h2, rerr := sb.eng.RepairCtx(sp)
		cost = cost.Seq(rcost)
		if rerr == nil && !h2.Healthy() {
			rerr = fmt.Errorf("serve: standby unhealthy after repair (%s): %w", h2, ErrUnhealthy)
		}
		if rerr != nil {
			sb.mu.Unlock()
			p.hiddenPS.Add(cost.LatencyPS)
			addFloat(&p.hiddenPJ, cost.EnergyPJ)
			return energy.Zero, cost, rerr
		}
	}
	sb.mu.Unlock()

	// Atomic swap: requests that load the pointer after this line run on
	// the new weights. The old live engine becomes the next standby.
	old := p.live.Swap(sb)
	p.standby = old
	p.swaps.Add(1)
	p.hiddenPS.Add(cost.LatencyPS)
	addFloat(&p.hiddenPJ, cost.EnergyPJ)

	visible = energy.Cost{LatencyPS: energy.EDRAMAccessLatencyPS, EnergyPJ: cost.EnergyPJ}
	return visible, cost, nil
}

// addFloat CAS-adds delta to the float64 stored as bits in cell.
func addFloat(cell *atomic.Uint64, delta float64) {
	for {
		old := cell.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if cell.CompareAndSwap(old, next) {
			return
		}
	}
}

func loadFloat(cell *atomic.Uint64) float64 { return math.Float64frombits(cell.Load()) }
