package serve_test

import (
	"fmt"
	"math/rand"

	"cimrev/internal/dpe"
	"cimrev/internal/nn"
	"cimrev/internal/serve"
)

// ExampleShadowPair_Reprogram shows the zero-downtime weight update: the
// standby engine absorbs the full crossbar programming cost while the
// live engine keeps serving, and only a buffer swap lands on the visible
// (serving) critical path.
func ExampleShadowPair_Reprogram() {
	cfg := dpe.DefaultConfig()
	cfg.Crossbar.Rows, cfg.Crossbar.Cols = 64, 64

	netV1, err := nn.NewMLP("v1", []int{16, 8}, rand.New(rand.NewSource(1)))
	if err != nil {
		panic(err)
	}
	netV2, err := nn.NewMLP("v2", []int{16, 8}, rand.New(rand.NewSource(2)))
	if err != nil {
		panic(err)
	}

	pair, _, err := serve.NewShadowPair(cfg, netV1)
	if err != nil {
		panic(err)
	}

	visible, hidden, err := pair.Reprogram(netV2)
	if err != nil {
		panic(err)
	}
	fmt.Println("swaps:", pair.Swaps())
	fmt.Println("programming hidden behind serving:", visible.LatencyPS < hidden.LatencyPS)
	// Output:
	// swaps: 1
	// programming hidden behind serving: true
}
