package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"cimrev/internal/dpe"
)

func noisyPairConfig() dpe.Config {
	cfg := testEngineConfig()
	cfg.Crossbar.ReadNoise = 0.02
	return cfg
}

// TestSubmitKeyedBitIdentical: outputs served through the full pipeline
// (queue, batcher, shadow pair, breaker) with caller-owned keys are
// bit-identical to the same keys run directly through a twin engine —
// regardless of how the batcher grouped the concurrent submissions.
func TestSubmitKeyedBitIdentical(t *testing.T) {
	net := testMLP(t, 32, 24, 10)
	const n = 32
	inputs := testInputs(n, 32, 7)

	// Reference: direct keyed inference on a twin engine.
	ref, err := dpe.New(noisyPairConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Load(net); err != nil {
		t.Fatal(err)
	}
	seqs := make([]uint64, n)
	for i := range seqs {
		seqs[i] = uint64(i)
	}
	want, _, err := ref.InferBatchKeyed(seqs, inputs)
	if err != nil {
		t.Fatal(err)
	}

	pair, _, err := NewShadowPair(noisyPairConfig(), net)
	if err != nil {
		t.Fatal(err)
	}
	brk, err := NewBreaker(pair)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(brk, WithBatch(8, 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	got := make([][]float64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, _, err := srv.SubmitKeyed(context.Background(), uint64(i), inputs[i])
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			got[i] = out
		}(i)
	}
	wg.Wait()
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("request %d: batched keyed output differs from direct keyed inference", i)
			}
		}
	}
}

// TestSubmitKeyedMixedWithPlain: keyed and unkeyed requests interleaved
// through one server must not disturb each other — keyed requests never
// consume engine-counter positions, so the unkeyed stream stays identical
// to an unkeyed-only run.
func TestSubmitKeyedMixedWithPlain(t *testing.T) {
	net := testMLP(t, 32, 24, 10)
	inputs := testInputs(8, 32, 7)

	// Reference: unkeyed-only server consuming counter 0..7 in order.
	mk := func() *Server {
		pair, _, err := NewShadowPair(noisyPairConfig(), net)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := New(pair, WithBatch(4, 2*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}
	refSrv := mk()
	defer refSrv.Close()
	want := make([][]float64, len(inputs))
	for i, in := range inputs {
		out, _, err := refSrv.Infer(in)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out
	}

	// Mixed: same unkeyed requests in order, with keyed requests (high
	// keys, far from the counter range) interleaved between them.
	mixSrv := mk()
	defer mixSrv.Close()
	for i, in := range inputs {
		if _, _, err := mixSrv.SubmitKeyed(context.Background(), uint64(1000+i), in); err != nil {
			t.Fatal(err)
		}
		out, _, err := mixSrv.Infer(in)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want[i] {
			if out[j] != want[i][j] {
				t.Fatalf("request %d: interleaved keyed traffic perturbed the unkeyed noise stream", i)
			}
		}
	}
}

// TestQueueDepth: the live backpressure signal the fleet's least-loaded
// policy reads. Idle server reports zero.
func TestQueueDepth(t *testing.T) {
	net := testMLP(t, 16, 8)
	eng := loadedEngine(t, net)
	srv, err := New(eng)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if got := srv.QueueDepth(); got != 0 {
		t.Errorf("idle QueueDepth = %d, want 0", got)
	}
}
