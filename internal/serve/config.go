// Serving configuration: one validated Config for the whole pipeline
// (batcher, ingress queue, breaker retry/backoff, health probe, telemetry),
// built from Default() plus functional options.
//
// Before this redesign the batcher and the circuit breaker each took their
// own config struct (Config and BreakerConfig) with overlapping plumbing
// fields (Registry, Seed), and callers had to keep the two consistent by
// hand. Now a single Config feeds both New (the Server) and NewBreaker;
// each constructor validates the fields it consumes, and shared plumbing
// (Registry, Tracer) is set once:
//
//	srv, err := serve.New(backend,
//	    serve.WithBatch(64, 2*time.Millisecond),
//	    serve.WithQueueBound(4096),
//	    serve.WithRegistry(reg),
//	    serve.WithTracer(tracer),
//	)
//	brk, err := serve.NewBreaker(pair,
//	    serve.WithRetry(3, time.Millisecond, 50*time.Millisecond),
//	    serve.WithProbe(0.9, probeIns, probeLabels),
//	    serve.WithRegistry(reg),
//	)
//
// Zero options means Default(): the exact pre-redesign defaults.
package serve

import (
	"fmt"
	"time"

	"cimrev/internal/metrics"
	"cimrev/internal/obs"
)

// Config configures the serving pipeline. Construct with Default() (or
// zero options to New/NewBreaker) and refine with functional options; a
// hand-built Config can be installed wholesale with WithConfig.
type Config struct {
	// --- Micro-batcher (Server) ---

	// MaxBatch is the flush threshold: a batch is dispatched as soon as
	// it holds this many requests. Must be >= 1.
	MaxBatch int
	// MaxDelay is the flush deadline: an open batch is dispatched at most
	// this long after its first request arrived, even if under-full.
	// Must be > 0.
	MaxDelay time.Duration
	// QueueBound is the ingress queue's high-water mark: the maximum
	// number of requests waiting for dispatch. Must be >= 1. Requests
	// beyond it are rejected with ErrOverloaded.
	QueueBound int

	// --- Circuit breaker (Breaker) ---

	// MinAccuracy is the probe-accuracy floor in [0, 1]. A post-swap probe
	// below it trips the breaker. With no probe set, accuracy gating is
	// skipped and only reprogram failures can trip.
	MinAccuracy float64
	// ProbeInputs / ProbeLabels are the labeled holdout set probed after
	// every swap. Labels are argmax class indices. Both may be empty
	// (disables probing); lengths must match.
	ProbeInputs [][]float64
	ProbeLabels []int
	// MaxRetries bounds how many times a failed Reprogram is retried
	// (total attempts = MaxRetries + 1). Zero disables retries.
	MaxRetries int
	// BaseBackoff is the first retry's nominal delay; attempt k waits
	// BaseBackoff << k, capped at MaxBackoff, scaled by a jitter factor
	// in [0.5, 1). Zero disables sleeping (retries run back to back).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth. Zero means uncapped.
	MaxBackoff time.Duration
	// Seed keys the retry-jitter stream. Jitter draws are a pure function
	// of (Seed, attempt counter), so retry schedules replay exactly.
	Seed int64

	// --- Shared plumbing ---

	// Registry receives serving metrics. Nil selects a private registry
	// (always safe; reachable via Server.Registry).
	Registry *metrics.Registry
	// Tracer records serve-layer spans (flushes, shadow swaps, breaker
	// reprograms) and is threaded down into the engine/crossbar spans.
	// Nil or disabled means the pipeline pays only nil-check branches.
	Tracer *obs.Tracer
}

// Default returns the serving configuration the benchmarks use: batches
// up to 64, a 2ms flush deadline, a 4096-deep ingress queue, no retries,
// and no probe — identical to the pre-redesign DefaultConfig() +
// zero-valued BreakerConfig behavior.
func Default() Config {
	return Config{MaxBatch: 64, MaxDelay: 2 * time.Millisecond, QueueBound: 4096}
}

// Validate reports whether the configuration is usable. Like the
// crossbar's ADCBits=0 rejection, degenerate serving parameters fail fast
// at construction with a descriptive error instead of deadlocking or
// spinning later.
func (c Config) Validate() error {
	switch {
	case c.MaxBatch < 1:
		return fmt.Errorf("serve: MaxBatch must be >= 1, got %d (a batcher that never fills never flushes)", c.MaxBatch)
	case c.MaxDelay <= 0:
		return fmt.Errorf("serve: MaxDelay must be positive, got %v (a zero deadline would busy-spin the dispatcher)", c.MaxDelay)
	case c.QueueBound < 1:
		return fmt.Errorf("serve: QueueBound must be >= 1, got %d (a zero-length ingress queue rejects every request)", c.QueueBound)
	}
	return c.validateBreaker()
}

// validateBreaker checks only the breaker-facing fields; NewBreaker uses
// it directly so a Breaker-only caller need not fill batcher fields.
func (c Config) validateBreaker() error {
	switch {
	case c.MinAccuracy < 0 || c.MinAccuracy > 1:
		return fmt.Errorf("serve: MinAccuracy must be in [0, 1], got %g", c.MinAccuracy)
	case len(c.ProbeInputs) != len(c.ProbeLabels):
		return fmt.Errorf("serve: probe set mismatch: %d inputs, %d labels",
			len(c.ProbeInputs), len(c.ProbeLabels))
	case c.MaxRetries < 0:
		return fmt.Errorf("serve: MaxRetries must be >= 0, got %d", c.MaxRetries)
	case c.BaseBackoff < 0 || c.MaxBackoff < 0:
		return fmt.Errorf("serve: backoff durations must be >= 0")
	case c.MaxBackoff > 0 && c.BaseBackoff > c.MaxBackoff:
		return fmt.Errorf("serve: BaseBackoff %v exceeds MaxBackoff %v", c.BaseBackoff, c.MaxBackoff)
	}
	return nil
}

// Option mutates a Config during construction.
type Option func(*Config)

// WithConfig replaces the whole configuration (applied before any other
// option in the same call takes effect, in argument order).
func WithConfig(cfg Config) Option { return func(c *Config) { *c = cfg } }

// WithBatch sets the flush threshold and deadline.
func WithBatch(maxBatch int, maxDelay time.Duration) Option {
	return func(c *Config) { c.MaxBatch, c.MaxDelay = maxBatch, maxDelay }
}

// WithQueueBound sets the ingress queue's high-water mark.
func WithQueueBound(n int) Option { return func(c *Config) { c.QueueBound = n } }

// WithRetry sets the breaker's reprogram retry budget and backoff window.
func WithRetry(maxRetries int, base, max time.Duration) Option {
	return func(c *Config) { c.MaxRetries, c.BaseBackoff, c.MaxBackoff = maxRetries, base, max }
}

// WithProbe installs the post-swap holdout probe and its accuracy floor.
func WithProbe(minAccuracy float64, inputs [][]float64, labels []int) Option {
	return func(c *Config) { c.MinAccuracy, c.ProbeInputs, c.ProbeLabels = minAccuracy, inputs, labels }
}

// WithSeed keys the deterministic retry-jitter stream.
func WithSeed(seed int64) Option { return func(c *Config) { c.Seed = seed } }

// WithRegistry routes metrics into reg instead of a private registry.
func WithRegistry(reg *metrics.Registry) Option { return func(c *Config) { c.Registry = reg } }

// WithTracer records serve-layer (and downstream engine/crossbar) spans
// into tr.
func WithTracer(tr *obs.Tracer) Option { return func(c *Config) { c.Tracer = tr } }

// build folds options over Default().
func build(opts []Option) Config {
	cfg := Default()
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}
