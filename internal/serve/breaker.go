// Health-aware circuit breaker over a shadow-engine pair.
//
// The fault subsystem (internal/faultinject, docs/FAULTS.md) makes weight
// updates fallible: program-and-verify can exhaust retry budgets, spare
// columns can run out, and a freshly swapped engine can compute garbage on
// cells the self-test could not save. The Breaker is the serving layer's
// response. It wraps a ShadowPair and adds three behaviors:
//
//   - Reprogram failures are retried with exponential backoff plus
//     deterministic jitter (a counter-based noise stream, so tests replay
//     bit-identically). Each retry re-runs Load on a fresh program epoch,
//     which re-rolls transient write failures.
//   - After a successful swap, the new live engine is probed against a
//     labeled holdout set. If probe accuracy falls below MinAccuracy the
//     breaker trips: the degraded weights stay live (they were already
//     swapped and the old weights are now mid-overwrite on the standby),
//     but every subsequent batch sheds with a typed ErrUnhealthy instead
//     of silently serving bad answers.
//   - While tripped, InferBatch fails fast. A subsequent successful
//     Reprogram (healthy swap + passing probe) closes the breaker; Reset
//     forces it closed for operators who accept the degradation.
//
// The Server's flush loop recognizes ErrUnhealthy and sheds whole batches
// without the per-request fallback — retrying one request at a time
// against a tripped breaker is pure waste.
//
// The Breaker shares the pipeline-wide serve.Config: NewBreaker takes the
// same functional options as New, consuming the retry/backoff/probe fields
// (WithRetry, WithProbe, WithSeed) plus the shared Registry and Tracer.
package serve

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"cimrev/internal/energy"
	"cimrev/internal/metrics"
	"cimrev/internal/nn"
	"cimrev/internal/noise"
	"cimrev/internal/obs"
)

// ErrUnhealthy is the typed sentinel for health-driven load shedding: a
// tripped Breaker returns it from InferBatch, and ShadowPair.Reprogram
// wraps it when a standby stays unhealthy after repair. Callers match it
// with errors.Is; the Server's dispatcher sheds whole batches on it.
var ErrUnhealthy = errors.New("serve: backend unhealthy")

// UnhealthyError carries the probe evidence behind a breaker trip. It
// unwraps to ErrUnhealthy so errors.Is(err, ErrUnhealthy) matches.
type UnhealthyError struct {
	// Accuracy is the measured probe accuracy that tripped the breaker.
	Accuracy float64
	// MinAccuracy is the configured floor it fell below.
	MinAccuracy float64
}

func (e *UnhealthyError) Error() string {
	return fmt.Sprintf("serve: probe accuracy %.4f below floor %.4f: %v",
		e.Accuracy, e.MinAccuracy, ErrUnhealthy)
}

// Unwrap makes errors.Is(err, ErrUnhealthy) true.
func (e *UnhealthyError) Unwrap() error { return ErrUnhealthy }

// breakerMetrics holds the breaker's interned metric handles.
type breakerMetrics struct {
	shed     *metrics.Counter
	trips    *metrics.Counter
	retries  *metrics.Counter
	probeAcc *metrics.Gauge
}

func newBreakerMetrics(reg *metrics.Registry) breakerMetrics {
	return breakerMetrics{
		shed:     reg.Counter("serve.breaker_shed"),
		trips:    reg.Counter("serve.breaker_trips"),
		retries:  reg.Counter("serve.reprogram_retries"),
		probeAcc: reg.Gauge("serve.probe_accuracy"),
	}
}

// Breaker is a health-aware circuit breaker implementing Backend over a
// ShadowPair. Construct with NewBreaker; the zero value is not usable.
// InferBatch is safe for concurrent use; Reprogram calls are serialized
// internally and may run concurrently with InferBatch.
type Breaker struct {
	cfg    Config
	pair   *ShadowPair
	reg    *metrics.Registry
	met    breakerMetrics
	tracer *obs.Tracer

	jitter  noise.Source
	draws   atomic.Uint64 // jitter stream position
	tripped atomic.Bool
}

// NewBreaker wraps pair with health gating, configured by Default()
// refined with opts (the breaker consumes the retry/backoff/probe fields;
// batcher fields are ignored here and validated by New).
func NewBreaker(pair *ShadowPair, opts ...Option) (*Breaker, error) {
	if pair == nil {
		return nil, fmt.Errorf("serve: nil shadow pair")
	}
	cfg := build(opts)
	if err := cfg.validateBreaker(); err != nil {
		return nil, err
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Breaker{
		cfg:    cfg,
		pair:   pair,
		reg:    reg,
		met:    newBreakerMetrics(reg),
		tracer: cfg.Tracer,
		jitter: noise.NewSource(cfg.Seed),
	}, nil
}

// Pair returns the underlying shadow pair (statistics only).
func (b *Breaker) Pair() *ShadowPair { return b.pair }

// Tripped reports whether the breaker is open (shedding).
func (b *Breaker) Tripped() bool { return b.tripped.Load() }

// Reset forces the breaker closed without a probe: the operator accepts
// whatever weights are live.
func (b *Breaker) Reset() { b.tripped.Store(false) }

// InferBatch serves the batch from the live engine, or sheds the whole
// batch with ErrUnhealthy while the breaker is open.
func (b *Breaker) InferBatch(inputs [][]float64) ([][]float64, energy.Cost, error) {
	return b.InferBatchCtx(obs.Ctx{}, inputs)
}

// InferBatchCtx is InferBatch with tracing, linking the shadow pair's
// span tree under pc. Shed batches record no child spans (nothing ran).
func (b *Breaker) InferBatchCtx(pc obs.Ctx, inputs [][]float64) ([][]float64, energy.Cost, error) {
	if b.tripped.Load() {
		b.met.shed.Add(int64(len(inputs)))
		return nil, energy.Zero, fmt.Errorf("serve: breaker open: %w", ErrUnhealthy)
	}
	return b.pair.InferBatchCtx(pc, inputs)
}

// InferBatchKeyedCtx is the request-keyed-noise variant of InferBatchCtx:
// it forwards caller-owned noise sequence numbers to the pair (and from
// there to dpe.Engine.InferBatchKeyed), shedding identically to
// InferBatchCtx while the breaker is open.
func (b *Breaker) InferBatchKeyedCtx(pc obs.Ctx, seqs []uint64, inputs [][]float64) ([][]float64, energy.Cost, error) {
	if b.tripped.Load() {
		b.met.shed.Add(int64(len(inputs)))
		return nil, energy.Zero, fmt.Errorf("serve: breaker open: %w", ErrUnhealthy)
	}
	return b.pair.InferBatchKeyedCtx(pc, seqs, inputs)
}

// Reprogram pushes net through the shadow pair with retry, backoff, and a
// post-swap accuracy probe. On success the breaker (re)closes. Failure
// modes:
//
//   - Every attempt failed (standby unhealthy after repair, or a hard
//     Load error): the breaker trips and the last error is returned; the
//     live engine keeps serving the previous weights.
//   - The swap happened but the probe came in under MinAccuracy: the
//     breaker trips and an *UnhealthyError with the evidence is returned.
//
// The hidden cost accumulates across every attempt — failed programming
// passes burn real energy, and the ledger shows it.
//
// With a tracer configured, each Reprogram is one "serve.reprogram" root
// span annotated with the attempt count, wrapping the per-attempt
// "serve.shadow_swap" spans (and their dpe.load / tile.program children).
// The span's cost is the visible cost — the hidden cost lives on the
// children and in HiddenCost().
func (b *Breaker) Reprogram(net *nn.Network) (visible, hidden energy.Cost, err error) {
	sp := b.tracer.Root("serve.reprogram")
	attempts := 0
	visible, hidden, err = b.reprogram(sp, net, &attempts)
	if sp.Active() {
		sp.Annotate("attempts", float64(attempts))
		if err != nil {
			sp.Annotate("error", 1)
		}
	}
	sp.End(visible)
	return visible, hidden, err
}

func (b *Breaker) reprogram(sp obs.Ctx, net *nn.Network, attemptsOut *int) (visible, hidden energy.Cost, err error) {
	attempts := b.cfg.MaxRetries + 1
	for attempt := 0; attempt < attempts; attempt++ {
		*attemptsOut = attempt + 1
		if attempt > 0 {
			b.met.retries.Inc()
			if d := b.backoff(attempt - 1); d > 0 {
				time.Sleep(d)
			}
		}
		var v, h energy.Cost
		v, h, err = b.pair.ReprogramCtx(sp, net)
		hidden = hidden.Seq(h)
		if err == nil {
			visible = v
			break
		}
	}
	if err != nil {
		b.trip()
		return energy.Zero, hidden, fmt.Errorf("serve: reprogram failed after %d attempts: %w", attempts, err)
	}

	if len(b.cfg.ProbeInputs) > 0 {
		acc, perr := b.probe(sp)
		if perr != nil {
			b.trip()
			return energy.Zero, hidden, fmt.Errorf("serve: post-swap probe: %w", perr)
		}
		b.met.probeAcc.Set(acc)
		if acc < b.cfg.MinAccuracy {
			b.trip()
			return energy.Zero, hidden, &UnhealthyError{Accuracy: acc, MinAccuracy: b.cfg.MinAccuracy}
		}
	}
	b.tripped.Store(false)
	return visible, hidden, nil
}

// trip opens the breaker and counts the transition.
func (b *Breaker) trip() {
	if !b.tripped.Swap(true) {
		b.met.trips.Inc()
	}
}

// backoff returns attempt k's delay: BaseBackoff << k capped at
// MaxBackoff, scaled by a deterministic jitter factor in [0.5, 1) so
// synchronized retries decorrelate without losing replayability.
func (b *Breaker) backoff(k int) time.Duration {
	if b.cfg.BaseBackoff <= 0 {
		return 0
	}
	d := b.cfg.BaseBackoff
	for i := 0; i < k && d < 1<<40; i++ {
		d *= 2
	}
	if b.cfg.MaxBackoff > 0 && d > b.cfg.MaxBackoff {
		d = b.cfg.MaxBackoff
	}
	f := 0.5 + 0.5*b.jitter.Float64(b.draws.Add(1))
	return time.Duration(float64(d) * f)
}

// probe runs the holdout set through the live engine (bypassing the
// tripped check — the probe is how the breaker decides) and returns
// argmax accuracy.
func (b *Breaker) probe(pc obs.Ctx) (float64, error) {
	sp := pc.Child("serve.probe")
	outs, cost, err := b.pair.InferBatchCtx(sp, b.cfg.ProbeInputs)
	sp.End(cost)
	if err != nil {
		return 0, err
	}
	correct := 0
	for i, out := range outs {
		if argmax(out) == b.cfg.ProbeLabels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(outs)), nil
}

// argmax returns the index of the largest element (first on ties).
func argmax(v []float64) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}
