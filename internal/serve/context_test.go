package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestSubmitPreCanceledContext: a context that is already done never
// enqueues — Submit fails fast with ErrCanceled wrapping the cause.
func TestSubmitPreCanceledContext(t *testing.T) {
	bk := &countingBackend{}
	srv, err := New(bk, WithBatch(4, time.Millisecond), WithQueueBound(16))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err = srv.Submit(ctx, []float64{1})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Submit with dead context = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ErrCanceled does not wrap the context cause: %v", err)
	}
	bk.mu.Lock()
	defer bk.mu.Unlock()
	if len(bk.sizes) != 0 {
		t.Fatalf("pre-canceled request reached the backend: batches %v", bk.sizes)
	}
}

// TestSubmitNilContext: a nil context is treated as context.Background().
func TestSubmitNilContext(t *testing.T) {
	bk := &countingBackend{}
	srv, err := New(bk, WithBatch(1, time.Millisecond), WithQueueBound(16))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, _, err := srv.Submit(nil, []float64{1}); err != nil { //nolint:staticcheck // nil ctx is part of the contract
		t.Fatalf("Submit(nil, ...) = %v, want nil error", err)
	}
}

// TestSubmitCanceledWhileQueued pins the shed path: requests whose context
// dies while they sit in the ingress queue are skipped at flush time — the
// callers get ErrCanceled and the abandoned inputs never reach the
// backend.
func TestSubmitCanceledWhileQueued(t *testing.T) {
	const parked = 4
	bk := &blockingBackend{entered: make(chan struct{}, 64), release: make(chan struct{})}
	srv, err := New(bk, WithBatch(1, time.Millisecond), WithQueueBound(parked+1))
	if err != nil {
		t.Fatal(err)
	}

	// Jam the dispatcher inside a flush so the queue holds still.
	firstDone := make(chan error, 1)
	go func() {
		_, _, err := srv.Infer([]float64{0})
		firstDone <- err
	}()
	<-bk.entered

	// Park requests in the queue under a cancelable context.
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	errs := make([]error, parked)
	for i := 0; i < parked; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = srv.Submit(ctx, []float64{float64(i + 1)})
		}(i)
	}
	deadline := time.After(5 * time.Second)
	for len(srv.queue) < parked {
		select {
		case <-deadline:
			t.Fatalf("queue never filled: %d/%d", len(srv.queue), parked)
		default:
			time.Sleep(time.Millisecond)
		}
	}

	// Abandon them, then let the dispatcher run again.
	cancel()
	wg.Wait()
	close(bk.release)
	if err := <-firstDone; err != nil {
		t.Errorf("first request: %v", err)
	}
	srv.Close()

	for i, err := range errs {
		if !errors.Is(err, ErrCanceled) {
			t.Errorf("parked request %d: %v, want ErrCanceled", i, err)
		}
	}
	// Only the first request ever reached the device: the four abandoned
	// requests were shed before flush.
	bk.mu.Lock()
	defer bk.mu.Unlock()
	if len(bk.batches) != 1 {
		t.Errorf("backend saw %d batches, want 1 (abandoned work must be shed)", len(bk.batches))
	}
	if got := srv.Registry().Counter("serve.canceled").Value(); got != parked {
		t.Errorf("serve.canceled = %d, want %d", got, parked)
	}
	close(bk.entered)
}

// TestSubmitCanceledMidBatch: a request already mid-flush when its context
// dies returns ErrCanceled immediately; the device result is discarded
// into the buffered response channel and nothing leaks or deadlocks.
func TestSubmitCanceledMidBatch(t *testing.T) {
	bk := &blockingBackend{entered: make(chan struct{}, 64), release: make(chan struct{})}
	srv, err := New(bk, WithBatch(1, time.Millisecond), WithQueueBound(8))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := srv.Submit(ctx, []float64{1})
		done <- err
	}()
	<-bk.entered // the request is on the device
	cancel()
	if err := <-done; !errors.Is(err, ErrCanceled) {
		t.Fatalf("mid-batch cancel = %v, want ErrCanceled", err)
	}
	// The dispatcher finishes the flush into the buffered channel; Close
	// must not hang on the abandoned request.
	close(bk.release)
	srv.Close()
	close(bk.entered)
	if got := srv.Registry().Counter("serve.canceled").Value(); got != 1 {
		t.Errorf("serve.canceled = %d, want 1", got)
	}
}

// TestSubmitDeadlineExceeded: a context whose *deadline* fires mid-batch
// surfaces ErrDeadlineExceeded (not ErrCanceled), wraps
// context.DeadlineExceeded, and lands in the deadline cause and mid-batch
// stage counters.
func TestSubmitDeadlineExceeded(t *testing.T) {
	bk := &blockingBackend{entered: make(chan struct{}, 64), release: make(chan struct{})}
	srv, err := New(bk, WithBatch(1, time.Millisecond), WithQueueBound(8))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, _, err := srv.Submit(ctx, []float64{1})
		done <- err
	}()
	<-bk.entered
	err = <-done
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("deadline expiry = %v, want ErrDeadlineExceeded", err)
	}
	if errors.Is(err, ErrCanceled) {
		t.Fatalf("deadline expiry = %v, must not be ErrCanceled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ErrDeadlineExceeded does not wrap DeadlineExceeded: %v", err)
	}
	close(bk.release)
	srv.Close()
	close(bk.entered)
	reg := srv.Registry()
	if got := reg.Counter("serve.deadline_exceeded").Value(); got != 1 {
		t.Errorf("serve.deadline_exceeded = %d, want 1", got)
	}
	if got := reg.Counter("serve.canceled").Value(); got != 0 {
		t.Errorf("serve.canceled = %d, want 0 (deadline is a distinct cause)", got)
	}
	if got := reg.Counter("serve.deadline_mid_batch").Value(); got != 1 {
		t.Errorf("serve.deadline_mid_batch = %d, want 1", got)
	}
}

// TestSubmitDeadlinePreEnqueue: an already-expired deadline never enqueues;
// the pre-enqueue stage counter and the deadline cause counter move, the
// cancel counter does not.
func TestSubmitDeadlinePreEnqueue(t *testing.T) {
	bk := &countingBackend{}
	srv, err := New(bk, WithBatch(4, time.Millisecond), WithQueueBound(16))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, _, err = srv.Submit(ctx, []float64{1})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("Submit with expired deadline = %v, want ErrDeadlineExceeded", err)
	}
	bk.mu.Lock()
	if len(bk.sizes) != 0 {
		t.Fatalf("expired request reached the backend: batches %v", bk.sizes)
	}
	bk.mu.Unlock()
	reg := srv.Registry()
	if got := reg.Counter("serve.deadline_pre_enqueue").Value(); got != 1 {
		t.Errorf("serve.deadline_pre_enqueue = %d, want 1", got)
	}
	if got := reg.Counter("serve.deadline_exceeded").Value(); got != 1 {
		t.Errorf("serve.deadline_exceeded = %d, want 1", got)
	}
	if got := reg.Counter("serve.canceled").Value(); got != 0 {
		t.Errorf("serve.canceled = %d, want 0", got)
	}
}

// TestSubmitDeadlineWhileQueued: requests whose deadline fires while they
// sit in the ingress queue are shed before flush — they never reach the
// backend, the callers get ErrDeadlineExceeded, and the queued-stage
// counter records each shed.
func TestSubmitDeadlineWhileQueued(t *testing.T) {
	const parked = 4
	bk := &blockingBackend{entered: make(chan struct{}, 64), release: make(chan struct{})}
	srv, err := New(bk, WithBatch(1, time.Millisecond), WithQueueBound(parked+1))
	if err != nil {
		t.Fatal(err)
	}

	// Jam the dispatcher inside a flush so the queue holds still.
	firstDone := make(chan error, 1)
	go func() {
		_, _, err := srv.Infer([]float64{0})
		firstDone <- err
	}()
	<-bk.entered

	// Park requests under a deadline that fires while they are queued.
	var wg sync.WaitGroup
	errs := make([]error, parked)
	for i := 0; i < parked; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = srv.SubmitDeadline(context.Background(), 20*time.Millisecond, []float64{float64(i + 1)})
		}(i)
	}
	deadline := time.After(5 * time.Second)
	for len(srv.queue) < parked {
		select {
		case <-deadline:
			t.Fatalf("queue never filled: %d/%d", len(srv.queue), parked)
		default:
			time.Sleep(time.Millisecond)
		}
	}

	// Let the deadlines fire, then release the dispatcher.
	wg.Wait()
	close(bk.release)
	if err := <-firstDone; err != nil {
		t.Errorf("first request: %v", err)
	}
	srv.Close()

	for i, err := range errs {
		if !errors.Is(err, ErrDeadlineExceeded) {
			t.Errorf("parked request %d: %v, want ErrDeadlineExceeded", i, err)
		}
	}
	bk.mu.Lock()
	if len(bk.batches) != 1 {
		t.Errorf("backend saw %d batches, want 1 (expired work must be shed)", len(bk.batches))
	}
	bk.mu.Unlock()
	reg := srv.Registry()
	if got := reg.Counter("serve.deadline_exceeded").Value(); got != parked {
		t.Errorf("serve.deadline_exceeded = %d, want %d", got, parked)
	}
	if got := reg.Counter("serve.deadline_queued").Value(); got != parked {
		t.Errorf("serve.deadline_queued = %d, want %d", got, parked)
	}
	if got := reg.Counter("serve.canceled").Value(); got != 0 {
		t.Errorf("serve.canceled = %d, want 0", got)
	}
	close(bk.entered)
}

// TestSubmitDeadlineZeroIsSubmit: SubmitDeadline with d <= 0 is plain
// Submit — no budget, the request completes normally.
func TestSubmitDeadlineZeroIsSubmit(t *testing.T) {
	bk := &countingBackend{}
	srv, err := New(bk, WithBatch(1, time.Millisecond), WithQueueBound(16))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, _, err := srv.SubmitDeadline(context.Background(), 0, []float64{1}); err != nil {
		t.Fatalf("SubmitDeadline(d=0) = %v, want nil", err)
	}
}
