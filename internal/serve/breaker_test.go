package serve

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"cimrev/internal/dpe"
	"cimrev/internal/faultinject"
	"cimrev/internal/metrics"
	"cimrev/internal/nn"
)

// faultyEngineConfig is testEngineConfig with a device-fault model.
func faultyEngineConfig(m faultinject.Model, spares int) dpe.Config {
	cfg := testEngineConfig()
	cfg.Crossbar.SpareCols = spares
	cfg.Faults = m
	return cfg
}

// faultFreeOutputs programs net into a fault-free engine and returns its
// outputs on inputs — the bit-exact reference a repaired pipeline must hit.
func faultFreeOutputs(t *testing.T, net *nn.Network, inputs [][]float64) [][]float64 {
	t.Helper()
	eng, err := dpe.New(testEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Load(net); err != nil {
		t.Fatal(err)
	}
	outs, _, err := eng.InferBatch(inputs)
	if err != nil {
		t.Fatal(err)
	}
	return outs
}

func TestBreakerConfigValidate(t *testing.T) {
	pair, _, err := NewShadowPair(testEngineConfig(), testMLP(t, 32, 24, 10))
	if err != nil {
		t.Fatal(err)
	}
	bad := []Option{
		WithProbe(-0.1, nil, nil),
		WithProbe(1.5, nil, nil),
		WithProbe(0.5, make([][]float64, 3), make([]int, 2)),
		WithRetry(-1, 0, 0),
		WithRetry(0, -time.Second, 0),
		WithRetry(0, time.Second, time.Millisecond),
	}
	for i, opt := range bad {
		if _, err := NewBreaker(pair, opt); err == nil {
			t.Errorf("option %d accepted", i)
		}
	}
	if _, err := NewBreaker(nil); err == nil {
		t.Error("nil pair accepted")
	}
	if _, err := NewBreaker(pair); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

// TestShadowRepairBeforeSwap pins the repair-before-swap path: at seed 1
// the standby's Load loses a column to transient write failures, one
// in-place Repair clears it, and the swapped-in engine serves outputs
// bit-identical to a fault-free engine — with the repair charged to the
// hidden ledger.
func TestShadowRepairBeforeSwap(t *testing.T) {
	netA, netB := twoNets(t, 32, 24, 10)
	cfg := faultyEngineConfig(faultinject.Model{WriteFailRate: 0.885, Seed: 1}, 0)
	pair, _, err := NewShadowPair(cfg, netA)
	if err != nil {
		t.Fatal(err)
	}
	_, hidden, err := pair.Reprogram(netB)
	if err != nil {
		t.Fatalf("reprogram with repairable standby failed: %v", err)
	}
	if pair.Swaps() != 1 {
		t.Fatalf("swaps = %d, want 1", pair.Swaps())
	}
	if h := pair.Live().HealthCheck(); !h.Healthy() {
		t.Fatalf("swapped-in engine unhealthy: %s", h)
	}

	inputs := testInputs(8, 32, 17)
	outs, _, err := pair.InferBatch(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(outs, faultFreeOutputs(t, netB, inputs)) {
		t.Fatal("repaired live engine output differs from fault-free engine")
	}

	// The hidden ledger must show the honest price: the 0.885 pulse-failure
	// rate forces far more programming energy than a clean load.
	ref, err := dpe.New(testEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	cleanCost, err := ref.Load(netB)
	if err != nil {
		t.Fatal(err)
	}
	if hidden.EnergyPJ <= cleanCost.EnergyPJ {
		t.Fatalf("hidden energy %g not above clean load %g", hidden.EnergyPJ, cleanCost.EnergyPJ)
	}
}

// TestBreakerRetryUntilHealthy pins the retry loop: at seed 3 the standby
// needs several Load epochs before program-and-verify settles every
// column, so the breaker's first attempts fail and a later retry lands.
func TestBreakerRetryUntilHealthy(t *testing.T) {
	netA, netB := twoNets(t, 32, 24, 10)
	cfg := faultyEngineConfig(faultinject.Model{WriteFailRate: 0.885, Seed: 3}, 0)
	pair, _, err := NewShadowPair(cfg, netA)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	br, err := NewBreaker(pair, WithRetry(5, 0, 0), WithRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	_, hidden, err := br.Reprogram(netB)
	if err != nil {
		t.Fatalf("reprogram did not recover within 6 attempts: %v", err)
	}
	if br.Tripped() {
		t.Fatal("breaker tripped after successful reprogram")
	}
	retries := reg.Counter("serve.reprogram_retries").Value()
	if retries == 0 {
		t.Fatal("seed 3 no longer exercises the retry path (0 retries)")
	}
	if pair.Swaps() != 1 {
		t.Fatalf("swaps = %d, want 1", pair.Swaps())
	}
	// Hidden cost accumulated across every failed attempt, so it must
	// exceed a single clean load several times over.
	ref, err := dpe.New(testEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	cleanCost, err := ref.Load(netB)
	if err != nil {
		t.Fatal(err)
	}
	if hidden.EnergyPJ <= 2*cleanCost.EnergyPJ {
		t.Fatalf("hidden energy %g does not reflect %d failed attempts (clean load %g)",
			hidden.EnergyPJ, retries, cleanCost.EnergyPJ)
	}
}

// TestBreakerTripsOnSpareExhaustion pins the degradation path: stuck cells
// past a zero spare budget cannot repair, every retry fails with
// ErrUnhealthy, the breaker trips and sheds, and the old weights stay live.
func TestBreakerTripsOnSpareExhaustion(t *testing.T) {
	netA, netB := twoNets(t, 32, 24, 10)
	cfg := faultyEngineConfig(faultinject.Model{StuckLowRate: 0.05, StuckHighRate: 0.05, Seed: 11}, 0)
	pair, _, err := NewShadowPair(cfg, netA)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	br, err := NewBreaker(pair,
		WithRetry(2, time.Microsecond, time.Millisecond),
		WithSeed(1),
		WithRegistry(reg),
	)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = br.Reprogram(netB)
	if !errors.Is(err, ErrUnhealthy) {
		t.Fatalf("want ErrUnhealthy, got %v", err)
	}
	if !br.Tripped() {
		t.Fatal("breaker did not trip")
	}
	if pair.Swaps() != 0 {
		t.Fatalf("unhealthy standby was swapped in (%d swaps)", pair.Swaps())
	}
	if got := reg.Counter("serve.reprogram_retries").Value(); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
	if got := reg.Counter("serve.breaker_trips").Value(); got != 1 {
		t.Fatalf("trips = %d, want 1", got)
	}

	// Open breaker sheds whole batches with the typed error.
	inputs := testInputs(4, 32, 23)
	if _, _, err := br.InferBatch(inputs); !errors.Is(err, ErrUnhealthy) {
		t.Fatalf("tripped breaker served: %v", err)
	}
	if got := reg.Counter("serve.breaker_shed").Value(); got != 4 {
		t.Fatalf("shed = %d, want 4", got)
	}

	// Reset closes it; the live engine (old weights, degraded but loaded)
	// serves again.
	br.Reset()
	if _, _, err := br.InferBatch(inputs); err != nil {
		t.Fatalf("reset breaker still shedding: %v", err)
	}
}

// TestBreakerProbeTrip pins accuracy gating: a swap that lands but probes
// below MinAccuracy trips the breaker with a typed UnhealthyError carrying
// the evidence, while a passing probe keeps it closed.
func TestBreakerProbeTrip(t *testing.T) {
	netA, netB := twoNets(t, 32, 24, 10)
	probe := testInputs(16, 32, 31)

	// Impossible labels: argmax never returns -1, so accuracy probes 0.
	badLabels := make([]int, len(probe))
	for i := range badLabels {
		badLabels[i] = -1
	}
	pair, _, err := NewShadowPair(testEngineConfig(), netA)
	if err != nil {
		t.Fatal(err)
	}
	br, err := NewBreaker(pair, WithProbe(0.5, probe, badLabels))
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = br.Reprogram(netB)
	var ue *UnhealthyError
	if !errors.As(err, &ue) {
		t.Fatalf("want *UnhealthyError, got %v", err)
	}
	if !errors.Is(err, ErrUnhealthy) {
		t.Fatal("UnhealthyError does not unwrap to ErrUnhealthy")
	}
	if ue.Accuracy != 0 || ue.MinAccuracy != 0.5 {
		t.Fatalf("evidence %+v", ue)
	}
	if !br.Tripped() {
		t.Fatal("failed probe did not trip the breaker")
	}

	// Labels matching the fault-free reference: probe accuracy 1.0, the
	// breaker stays closed, and the gauge records it.
	goodLabels := make([]int, len(probe))
	for i, out := range faultFreeOutputs(t, netB, probe) {
		goodLabels[i] = argmax(out)
	}
	pair2, _, err := NewShadowPair(testEngineConfig(), netA)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	br2, err := NewBreaker(pair2, WithProbe(0.5, probe, goodLabels), WithRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := br2.Reprogram(netB); err != nil {
		t.Fatalf("healthy reprogram tripped: %v", err)
	}
	if br2.Tripped() {
		t.Fatal("breaker open after passing probe")
	}
	if acc := reg.Gauge("serve.probe_accuracy").Value(); acc != 1.0 {
		t.Fatalf("probe accuracy gauge %g, want 1.0", acc)
	}
}

// TestServerShedsUnhealthyBatches pins the dispatcher integration: batches
// against a tripped breaker shed whole with ErrUnhealthy — no per-request
// fallback hammering — and the shed count lands in serve.unhealthy.
func TestServerShedsUnhealthyBatches(t *testing.T) {
	netA, netB := twoNets(t, 32, 24, 10)
	probe := testInputs(8, 32, 31)
	badLabels := make([]int, len(probe))
	for i := range badLabels {
		badLabels[i] = -1
	}
	pair, _, err := NewShadowPair(testEngineConfig(), netA)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	br, err := NewBreaker(pair, WithProbe(0.5, probe, badLabels), WithRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := br.Reprogram(netB); !errors.Is(err, ErrUnhealthy) {
		t.Fatalf("setup: %v", err)
	}

	srv, err := New(br, WithBatch(8, time.Millisecond), WithQueueBound(256), WithRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	const n = 24
	var wg sync.WaitGroup
	errs := make([]error, n)
	in := testInputs(n, 32, 41)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = srv.Infer(in[i])
		}(i)
	}
	wg.Wait()
	srv.Close()
	for i, err := range errs {
		if !errors.Is(err, ErrUnhealthy) {
			t.Fatalf("request %d: want ErrUnhealthy, got %v", i, err)
		}
	}
	if got := reg.Counter("serve.unhealthy").Value(); got != n {
		t.Fatalf("serve.unhealthy = %d, want %d", got, n)
	}
	if got := reg.Counter("serve.errors").Value(); got != 0 {
		t.Fatalf("per-request fallback ran %d times against a tripped breaker", got)
	}
}

// TestBreakerConcurrentAccess exercises the breaker under the race
// detector: concurrent inference, reprogramming, and state flips.
func TestBreakerConcurrentAccess(t *testing.T) {
	netA, netB := twoNets(t, 32, 24, 10)
	pair, _, err := NewShadowPair(testEngineConfig(), netA)
	if err != nil {
		t.Fatal(err)
	}
	br, err := NewBreaker(pair, WithRetry(1, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	inputs := testInputs(4, 32, 53)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := br.InferBatch(inputs); err != nil && !errors.Is(err, ErrUnhealthy) {
					t.Errorf("infer: %v", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			net := netA
			if i%2 == 0 {
				net = netB
			}
			if _, _, err := br.Reprogram(net); err != nil {
				t.Errorf("reprogram: %v", err)
				return
			}
			_ = br.Tripped()
			br.Reset()
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
}
