package security

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"cimrev/internal/packet"
)

// Right is a bitmask of capability permissions, after the CHERI model the
// paper names as "the ideal complement" to CIM's packet security.
type Right uint8

const (
	// RightRead permits reading unit state.
	RightRead Right = 1 << iota
	// RightWrite permits streaming data into units.
	RightWrite
	// RightExecute permits triggering computation.
	RightExecute
	// RightConfigure permits reprogramming units (the most privileged).
	RightConfigure
)

// Capability grants Rights over a contiguous tile range on one board. It is
// sealed by an Authority's HMAC, making it unforgeable and checkable at any
// component boundary without consulting the authority.
type Capability struct {
	Board          uint16
	TileLo, TileHi uint16
	Rights         Right
	MAC            []byte
}

// Covers reports whether the capability's range includes addr.
func (c Capability) Covers(addr packet.Address) bool {
	return addr.Board == c.Board && addr.Tile >= c.TileLo && addr.Tile <= c.TileHi
}

// Has reports whether the capability includes all the given rights.
func (c Capability) Has(r Right) bool { return c.Rights&r == r }

func (c Capability) signedBytes() []byte {
	buf := make([]byte, 7)
	binary.BigEndian.PutUint16(buf[0:], c.Board)
	binary.BigEndian.PutUint16(buf[2:], c.TileLo)
	binary.BigEndian.PutUint16(buf[4:], c.TileHi)
	buf[6] = byte(c.Rights)
	return buf
}

// Authority mints and verifies capabilities with a secret HMAC key.
type Authority struct {
	key []byte
}

// NewAuthority creates an authority with a fresh random key.
func NewAuthority() (*Authority, error) {
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return nil, fmt.Errorf("security: authority key: %w", err)
	}
	return &Authority{key: key}, nil
}

// Mint issues a sealed capability.
func (a *Authority) Mint(board, tileLo, tileHi uint16, rights Right) (Capability, error) {
	if tileHi < tileLo {
		return Capability{}, fmt.Errorf("security: tile range [%d,%d] inverted", tileLo, tileHi)
	}
	if rights == 0 {
		return Capability{}, fmt.Errorf("security: capability with no rights")
	}
	c := Capability{Board: board, TileLo: tileLo, TileHi: tileHi, Rights: rights}
	mac := hmac.New(sha256.New, a.key)
	mac.Write(c.signedBytes())
	c.MAC = mac.Sum(nil)
	return c, nil
}

// Derive returns a new capability with a subset of the parent's rights
// and/or a narrower range — monotonic attenuation, never amplification.
func (a *Authority) Derive(parent Capability, tileLo, tileHi uint16, rights Right) (Capability, error) {
	if err := a.Verify(parent); err != nil {
		return Capability{}, fmt.Errorf("security: derive from invalid parent: %w", err)
	}
	if tileLo < parent.TileLo || tileHi > parent.TileHi {
		return Capability{}, fmt.Errorf("security: derived range [%d,%d] exceeds parent [%d,%d]",
			tileLo, tileHi, parent.TileLo, parent.TileHi)
	}
	if rights&^parent.Rights != 0 {
		return Capability{}, fmt.Errorf("security: derived rights %#x exceed parent %#x", rights, parent.Rights)
	}
	return a.Mint(parent.Board, tileLo, tileHi, rights)
}

// Verify checks the capability's seal.
func (a *Authority) Verify(c Capability) error {
	mac := hmac.New(sha256.New, a.key)
	mac.Write(c.signedBytes())
	if !hmac.Equal(mac.Sum(nil), c.MAC) {
		return fmt.Errorf("security: capability seal invalid")
	}
	return nil
}

// Authorize checks that the sealed capability covers addr with the given
// rights — the boundary check components run before acting on a packet.
func (a *Authority) Authorize(c Capability, addr packet.Address, rights Right) error {
	if err := a.Verify(c); err != nil {
		return err
	}
	if !c.Covers(addr) {
		return fmt.Errorf("security: capability does not cover %v", addr)
	}
	if !c.Has(rights) {
		return fmt.Errorf("security: capability lacks rights %#x", rights)
	}
	return nil
}
