package security

import (
	"fmt"
	"sync"

	"cimrev/internal/packet"
)

// Policy configures an Inspector.
type Policy struct {
	// MaxPayload bounds data packet payload length (0 = unlimited).
	MaxPayload int
	// AllowedTypes whitelists packet types; empty allows all.
	AllowedTypes []packet.Type
	// AllowPrograms permits code-carrying packets. Self-programmable
	// dataflow is the most powerful — and most dangerous — programming
	// model, so it is off by default.
	AllowPrograms bool
}

// Inspector checks packets at the CIM boundary, "prior and after entering
// and exiting" the fabric.
type Inspector struct {
	policy  Policy
	allowed map[packet.Type]bool
}

// NewInspector compiles a policy.
func NewInspector(policy Policy) *Inspector {
	ins := &Inspector{policy: policy}
	if len(policy.AllowedTypes) > 0 {
		ins.allowed = make(map[packet.Type]bool, len(policy.AllowedTypes))
		for _, t := range policy.AllowedTypes {
			ins.allowed[t] = true
		}
	}
	return ins
}

// Inspect returns nil if the packet passes policy.
func (ins *Inspector) Inspect(p *packet.Packet) error {
	if p == nil {
		return fmt.Errorf("security: nil packet")
	}
	if ins.allowed != nil && !ins.allowed[p.Type] {
		return fmt.Errorf("security: packet type %v not allowed", p.Type)
	}
	if p.Type == packet.TypeProgram && !ins.policy.AllowPrograms {
		return fmt.Errorf("security: program packets not allowed")
	}
	if len(p.Code) > 0 && !ins.policy.AllowPrograms {
		return fmt.Errorf("security: embedded code not allowed")
	}
	if ins.policy.MaxPayload > 0 && len(p.Payload) > ins.policy.MaxPayload {
		return fmt.Errorf("security: payload %d exceeds limit %d", len(p.Payload), ins.policy.MaxPayload)
	}
	return nil
}

// Isolator partitions units and denies cross-partition traffic unless a
// flow is explicitly allowed — the "dynamic hardware isolation" of Section
// IV.B. Safe for concurrent use.
type Isolator struct {
	mu          sync.Mutex
	partitionOf map[packet.Address]int
	allowed     map[[2]int]bool
}

// NewIsolator returns an empty isolator; unassigned units belong to
// partition 0.
func NewIsolator() *Isolator {
	return &Isolator{
		partitionOf: make(map[packet.Address]int),
		allowed:     make(map[[2]int]bool),
	}
}

// Assign places a unit in a partition.
func (iso *Isolator) Assign(addr packet.Address, part int) {
	iso.mu.Lock()
	defer iso.mu.Unlock()
	iso.partitionOf[addr] = part
}

// PartitionOf returns the unit's partition (0 if unassigned).
func (iso *Isolator) PartitionOf(addr packet.Address) int {
	iso.mu.Lock()
	defer iso.mu.Unlock()
	return iso.partitionOf[addr]
}

// Allow permits directed traffic from partition a to partition b.
func (iso *Isolator) Allow(a, b int) {
	iso.mu.Lock()
	defer iso.mu.Unlock()
	iso.allowed[[2]int{a, b}] = true
}

// Revoke removes a previously allowed flow.
func (iso *Isolator) Revoke(a, b int) {
	iso.mu.Lock()
	defer iso.mu.Unlock()
	delete(iso.allowed, [2]int{a, b})
}

// Check returns nil if src may send to dst: same partition, or an allowed
// directed flow.
func (iso *Isolator) Check(src, dst packet.Address) error {
	iso.mu.Lock()
	defer iso.mu.Unlock()
	a, b := iso.partitionOf[src], iso.partitionOf[dst]
	if a == b {
		return nil
	}
	if iso.allowed[[2]int{a, b}] {
		return nil
	}
	return fmt.Errorf("security: partition %d may not send to partition %d (%v -> %v)", a, b, src, dst)
}
