package security

import (
	"strings"
	"testing"

	"cimrev/internal/packet"
)

func samplePacket() *packet.Packet {
	return &packet.Packet{
		Src:     packet.Address{Tile: 1},
		Dst:     packet.Address{Tile: 2},
		Stream:  7,
		Seq:     1,
		Type:    packet.TypeData,
		Payload: []float64{1, 2, 3},
	}
}

func TestKeyRingLifecycle(t *testing.T) {
	kr := NewKeyRing()
	if _, err := kr.Key(1); err == nil {
		t.Error("missing key lookup succeeded")
	}
	k1, err := kr.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(k1) != 32 {
		t.Errorf("key length = %d, want 32", len(k1))
	}
	got, err := kr.Key(1)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(k1) {
		t.Error("Key returned different bytes")
	}
	// Rekeying replaces.
	k2, err := kr.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	if string(k1) == string(k2) {
		t.Error("rekey produced identical key")
	}
	kr.Revoke(1)
	if _, err := kr.Key(1); err == nil {
		t.Error("revoked key still available")
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	kr := NewKeyRing()
	key, err := kr.Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	p := samplePacket()
	ct, cost, err := Seal(p, key)
	if err != nil {
		t.Fatal(err)
	}
	if cost.EnergyPJ <= 0 {
		t.Error("no crypto cost charged")
	}
	got, _, err := Open(ct, key)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stream != p.Stream || len(got.Payload) != 3 || got.Payload[2] != 3 {
		t.Errorf("decrypted packet mismatch: %+v", got)
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	kr := NewKeyRing()
	key, err := kr.Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	ct, _, err := Seal(samplePacket(), key)
	if err != nil {
		t.Fatal(err)
	}
	ct[len(ct)-1] ^= 0x01
	if _, _, err := Open(ct, key); err == nil {
		t.Error("tampered ciphertext accepted")
	}
}

func TestOpenRejectsWrongKey(t *testing.T) {
	kr := NewKeyRing()
	k1, err := kr.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := kr.Generate(2)
	if err != nil {
		t.Fatal(err)
	}
	ct, _, err := Seal(samplePacket(), k1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(ct, k2); err == nil {
		t.Error("wrong key accepted")
	}
}

func TestSealKeyValidation(t *testing.T) {
	if _, _, err := Seal(samplePacket(), []byte("short")); err == nil {
		t.Error("short key accepted")
	}
	if _, _, err := Open([]byte{1, 2}, make([]byte, 32)); err == nil {
		t.Error("short ciphertext accepted")
	}
}

func TestSealNonceUnique(t *testing.T) {
	key := make([]byte, 32)
	ct1, _, err := Seal(samplePacket(), key)
	if err != nil {
		t.Fatal(err)
	}
	ct2, _, err := Seal(samplePacket(), key)
	if err != nil {
		t.Fatal(err)
	}
	if string(ct1) == string(ct2) {
		t.Error("two seals produced identical ciphertext (nonce reuse)")
	}
}

func TestInspectorTypePolicy(t *testing.T) {
	ins := NewInspector(Policy{AllowedTypes: []packet.Type{packet.TypeData}})
	if err := ins.Inspect(samplePacket()); err != nil {
		t.Errorf("allowed type rejected: %v", err)
	}
	ctrl := &packet.Packet{Type: packet.TypeControl}
	if err := ins.Inspect(ctrl); err == nil {
		t.Error("disallowed type accepted")
	}
	if err := ins.Inspect(nil); err == nil {
		t.Error("nil packet accepted")
	}
}

func TestInspectorProgramPolicy(t *testing.T) {
	strict := NewInspector(Policy{})
	prog := &packet.Packet{Type: packet.TypeProgram, Code: []byte{1}}
	if err := strict.Inspect(prog); err == nil {
		t.Error("program packet accepted by default policy")
	}
	smuggled := &packet.Packet{Type: packet.TypeData, Code: []byte{1}}
	if err := strict.Inspect(smuggled); err == nil {
		t.Error("code smuggled in data packet accepted")
	}
	open := NewInspector(Policy{AllowPrograms: true})
	if err := open.Inspect(prog); err != nil {
		t.Errorf("program packet rejected by permissive policy: %v", err)
	}
}

func TestInspectorPayloadLimit(t *testing.T) {
	ins := NewInspector(Policy{MaxPayload: 2})
	small := &packet.Packet{Type: packet.TypeData, Payload: []float64{1, 2}}
	if err := ins.Inspect(small); err != nil {
		t.Errorf("within-limit payload rejected: %v", err)
	}
	big := &packet.Packet{Type: packet.TypeData, Payload: []float64{1, 2, 3}}
	if err := ins.Inspect(big); err == nil {
		t.Error("oversized payload accepted")
	}
}

func TestIsolator(t *testing.T) {
	iso := NewIsolator()
	a := packet.Address{Tile: 0}
	b := packet.Address{Tile: 1}
	c := packet.Address{Tile: 2}
	iso.Assign(a, 1)
	iso.Assign(b, 1)
	iso.Assign(c, 2)

	if err := iso.Check(a, b); err != nil {
		t.Errorf("same-partition traffic rejected: %v", err)
	}
	if err := iso.Check(a, c); err == nil {
		t.Error("cross-partition traffic accepted")
	}
	iso.Allow(1, 2)
	if err := iso.Check(a, c); err != nil {
		t.Errorf("allowed flow rejected: %v", err)
	}
	// Directed: reverse still denied.
	if err := iso.Check(c, a); err == nil {
		t.Error("reverse flow accepted")
	}
	iso.Revoke(1, 2)
	if err := iso.Check(a, c); err == nil {
		t.Error("revoked flow accepted")
	}
	if got := iso.PartitionOf(c); got != 2 {
		t.Errorf("PartitionOf = %d, want 2", got)
	}
	// Unassigned units share partition 0.
	d, e := packet.Address{Tile: 8}, packet.Address{Tile: 9}
	if err := iso.Check(d, e); err != nil {
		t.Errorf("unassigned units rejected: %v", err)
	}
}

func TestCapabilityMintVerifyAuthorize(t *testing.T) {
	auth, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	cap1, err := auth.Mint(0, 2, 5, RightRead|RightWrite)
	if err != nil {
		t.Fatal(err)
	}
	if err := auth.Verify(cap1); err != nil {
		t.Errorf("freshly minted capability invalid: %v", err)
	}
	in := packet.Address{Board: 0, Tile: 3}
	if err := auth.Authorize(cap1, in, RightRead); err != nil {
		t.Errorf("covered read rejected: %v", err)
	}
	if err := auth.Authorize(cap1, in, RightConfigure); err == nil {
		t.Error("ungranted right accepted")
	}
	out := packet.Address{Board: 0, Tile: 9}
	if err := auth.Authorize(cap1, out, RightRead); err == nil {
		t.Error("out-of-range address accepted")
	}
	wrongBoard := packet.Address{Board: 1, Tile: 3}
	if err := auth.Authorize(cap1, wrongBoard, RightRead); err == nil {
		t.Error("wrong board accepted")
	}
}

func TestCapabilityForgeryDetected(t *testing.T) {
	auth, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	cap1, err := auth.Mint(0, 0, 1, RightRead)
	if err != nil {
		t.Fatal(err)
	}
	forged := cap1
	forged.Rights = RightRead | RightConfigure // amplification attempt
	if err := auth.Verify(forged); err == nil {
		t.Error("forged rights accepted")
	}
	forged2 := cap1
	forged2.TileHi = 100
	if err := auth.Verify(forged2); err == nil {
		t.Error("forged range accepted")
	}
	// A different authority's capabilities do not verify.
	other, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Verify(cap1); err == nil {
		t.Error("foreign capability accepted")
	}
}

func TestCapabilityDeriveAttenuation(t *testing.T) {
	auth, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	parent, err := auth.Mint(0, 0, 10, RightRead|RightWrite|RightExecute)
	if err != nil {
		t.Fatal(err)
	}
	child, err := auth.Derive(parent, 2, 4, RightRead)
	if err != nil {
		t.Fatal(err)
	}
	if err := auth.Authorize(child, packet.Address{Tile: 3}, RightRead); err != nil {
		t.Errorf("derived capability rejected: %v", err)
	}
	// Amplification is impossible.
	if _, err := auth.Derive(parent, 0, 10, RightConfigure); err == nil {
		t.Error("rights amplification accepted")
	}
	if _, err := auth.Derive(parent, 0, 11, RightRead); err == nil {
		t.Error("range widening accepted")
	}
	forged := parent
	forged.MAC = nil
	if _, err := auth.Derive(forged, 0, 1, RightRead); err == nil {
		t.Error("derive from unsealed parent accepted")
	}
}

func TestCapabilityMintValidation(t *testing.T) {
	auth, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := auth.Mint(0, 5, 2, RightRead); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := auth.Mint(0, 0, 1, 0); err == nil {
		t.Error("rightless capability accepted")
	}
}

func TestCryptoCostScales(t *testing.T) {
	small := CryptoCost(100)
	big := CryptoCost(10_000)
	if big.EnergyPJ <= small.EnergyPJ || big.LatencyPS <= small.LatencyPS {
		t.Error("crypto cost must scale with size")
	}
}

func TestErrorsMentionSecurity(t *testing.T) {
	// Error strings should carry the package prefix for log triage.
	_, _, err := Seal(samplePacket(), nil)
	if err == nil || !strings.Contains(err.Error(), "security:") {
		t.Errorf("error %v lacks package prefix", err)
	}
}
