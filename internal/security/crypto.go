// Package security implements Section IV.A of the paper, which elevates
// security to a first-class requirement of the CIM architecture:
//
//   - "Packets in flight can be encrypted and networking key protection
//     model can be readily applied": per-stream AES-GCM with a KeyRing.
//   - "Data can be inspected prior and after entering and exiting CIM":
//     an Inspector enforcing ingress/egress policy.
//   - "Paths can be better secured by partitioning": an Isolator denying
//     cross-partition traffic unless explicitly allowed.
//   - "Fine grained protection, for example based on capabilities such as
//     CHERI": HMAC-sealed capabilities granting rights over unit ranges.
package security

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"fmt"
	"sync"

	"cimrev/internal/energy"
	"cimrev/internal/packet"
)

// Encryption cost constants: AES-GCM on a fabric-edge crypto block.
const (
	// CryptoEnergyPJPerByte is the energy per byte sealed or opened.
	CryptoEnergyPJPerByte = 0.2
	// CryptoBandwidth is the crypto block throughput in bytes/s.
	CryptoBandwidth = 4e9
)

// CryptoCost returns the cost of sealing or opening nbytes.
func CryptoCost(nbytes int) energy.Cost {
	return energy.Cost{
		LatencyPS: energy.PicosecondsFromSeconds(float64(nbytes) / CryptoBandwidth),
		EnergyPJ:  float64(nbytes) * CryptoEnergyPJPerByte,
	}
}

// KeyRing manages per-stream symmetric keys. Safe for concurrent use.
type KeyRing struct {
	mu   sync.Mutex
	keys map[packet.StreamID][]byte
}

// NewKeyRing returns an empty key ring.
func NewKeyRing() *KeyRing {
	return &KeyRing{keys: make(map[packet.StreamID][]byte)}
}

// Generate creates and stores a fresh 256-bit key for the stream,
// replacing any previous key (rekeying).
func (k *KeyRing) Generate(stream packet.StreamID) ([]byte, error) {
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return nil, fmt.Errorf("security: generate key: %w", err)
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	k.keys[stream] = key
	return append([]byte(nil), key...), nil
}

// Key returns the stream's key.
func (k *KeyRing) Key(stream packet.StreamID) ([]byte, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	key, ok := k.keys[stream]
	if !ok {
		return nil, fmt.Errorf("security: no key for stream %d", stream)
	}
	return append([]byte(nil), key...), nil
}

// Revoke removes the stream's key.
func (k *KeyRing) Revoke(stream packet.StreamID) {
	k.mu.Lock()
	defer k.mu.Unlock()
	delete(k.keys, stream)
}

// Seal encrypts a packet under the key with AES-256-GCM. The ciphertext is
// nonce || sealed(marshal(p)), authenticated as a whole.
func Seal(p *packet.Packet, key []byte) ([]byte, energy.Cost, error) {
	plaintext, err := p.Marshal()
	if err != nil {
		return nil, energy.Zero, err
	}
	aead, err := newAEAD(key)
	if err != nil {
		return nil, energy.Zero, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, energy.Zero, fmt.Errorf("security: nonce: %w", err)
	}
	out := aead.Seal(nonce, nonce, plaintext, nil)
	return out, CryptoCost(len(plaintext)), nil
}

// Open decrypts and authenticates a sealed packet.
func Open(data, key []byte) (*packet.Packet, energy.Cost, error) {
	aead, err := newAEAD(key)
	if err != nil {
		return nil, energy.Zero, err
	}
	if len(data) < aead.NonceSize() {
		return nil, energy.Zero, fmt.Errorf("security: ciphertext too short (%d bytes)", len(data))
	}
	nonce, ct := data[:aead.NonceSize()], data[aead.NonceSize():]
	plaintext, err := aead.Open(nil, nonce, ct, nil)
	if err != nil {
		return nil, energy.Zero, fmt.Errorf("security: open: %w", err)
	}
	p, err := packet.Unmarshal(plaintext)
	if err != nil {
		return nil, energy.Zero, err
	}
	return p, CryptoCost(len(plaintext)), nil
}

func newAEAD(key []byte) (cipher.AEAD, error) {
	if len(key) != 32 {
		return nil, fmt.Errorf("security: key must be 32 bytes, got %d", len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("security: cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("security: gcm: %w", err)
	}
	return aead, nil
}
