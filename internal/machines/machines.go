// Package machines curates the historical machine-balance database behind
// Fig 2 of the paper: "Memory bandwidth per processor floating point
// operations (FLOP)", the steady drop from a byte/FLOP ratio of 1.0 "to
// several orders of magnitude lower" that motivates CIM.
//
// Peak FLOP/s and sustained memory bandwidth figures are representative
// public numbers for each system; Fig 2 is about the trend, and the trend
// is robust to small disagreements in individual entries.
package machines

import (
	"fmt"
	"math"
	"sort"
)

// Record describes one machine generation.
type Record struct {
	Year      int
	Name      string
	Class     string  // "vector", "cpu", "gpu"
	PeakFlops float64 // FLOP/s
	MemBW     float64 // bytes/s
}

// BytesPerFlop returns the machine-balance ratio Fig 2 plots.
func (r Record) BytesPerFlop() float64 { return r.MemBW / r.PeakFlops }

// All returns the database ordered by year.
func All() []Record {
	recs := []Record{
		{1964, "CDC 6600", "vector", 3e6, 24e6},
		{1969, "CDC 7600", "vector", 36e6, 144e6},
		{1976, "Cray-1", "vector", 160e6, 640e6},
		{1982, "Cray X-MP", "vector", 235e6, 940e6},
		{1985, "Cray-2", "vector", 488e6, 990e6},
		{1991, "Cray C90", "vector", 1e9, 2.7e9},
		{1994, "Pentium 100", "cpu", 100e6, 180e6},
		{1997, "Pentium II", "cpu", 300e6, 400e6},
		{2001, "Pentium 4", "cpu", 3e9, 3.2e9},
		{2006, "Core 2 Quad", "cpu", 38e9, 8.5e9},
		{2009, "Nehalem-EP", "cpu", 85e9, 32e9},
		{2011, "Sandy Bridge-EP", "cpu", 166e9, 51e9},
		{2013, "Ivy Bridge-EP", "cpu", 259e9, 60e9},
		{2014, "Haswell-EP", "cpu", 580e9, 68e9},
		{2017, "Skylake-SP", "cpu", 2000e9, 128e9},
		{2013, "Tesla K40", "gpu", 4.3e12, 288e9},
		{2015, "Tesla M40", "gpu", 6.8e12, 288e9},
		{2016, "Tesla P100", "gpu", 10.6e12, 732e9},
		{2017, "Tesla V100", "gpu", 15.7e12, 900e9},
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Year < recs[j].Year })
	return recs
}

// Point is one (year, bytes/FLOP) sample of the Fig 2 series.
type Point struct {
	Year  int
	Name  string
	Ratio float64
}

// Series returns the Fig 2 byte/FLOP series in year order.
func Series() []Point {
	recs := All()
	pts := make([]Point, len(recs))
	for i, r := range recs {
		pts[i] = Point{Year: r.Year, Name: r.Name, Ratio: r.BytesPerFlop()}
	}
	return pts
}

// TrendSlope fits log10(ratio) = a + b*year by least squares and returns b,
// the per-year decline exponent. A healthy Fig 2 reproduction has b well
// below zero (ratios fall by orders of magnitude across decades).
func TrendSlope(pts []Point) (float64, error) {
	if len(pts) < 2 {
		return 0, fmt.Errorf("machines: need at least 2 points, got %d", len(pts))
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(pts))
	for _, p := range pts {
		if p.Ratio <= 0 {
			return 0, fmt.Errorf("machines: non-positive ratio for %s", p.Name)
		}
		x := float64(p.Year)
		y := math.Log10(p.Ratio)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, fmt.Errorf("machines: degenerate year distribution")
	}
	return (n*sxy - sx*sy) / den, nil
}

// DecadeMeans aggregates the series into per-decade geometric means,
// the robust way to see the Fig 2 staircase.
func DecadeMeans(pts []Point) []Point {
	type agg struct {
		logSum float64
		n      int
	}
	byDecade := make(map[int]*agg)
	for _, p := range pts {
		d := (p.Year / 10) * 10
		a, ok := byDecade[d]
		if !ok {
			a = &agg{}
			byDecade[d] = a
		}
		a.logSum += math.Log10(p.Ratio)
		a.n++
	}
	decades := make([]int, 0, len(byDecade))
	for d := range byDecade {
		decades = append(decades, d)
	}
	sort.Ints(decades)
	out := make([]Point, 0, len(decades))
	for _, d := range decades {
		a := byDecade[d]
		out = append(out, Point{
			Year:  d,
			Name:  fmt.Sprintf("%ds", d),
			Ratio: math.Pow(10, a.logSum/float64(a.n)),
		})
	}
	return out
}
