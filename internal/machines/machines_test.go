package machines

import (
	"math"
	"testing"
)

func TestAllSortedAndPositive(t *testing.T) {
	recs := All()
	if len(recs) < 10 {
		t.Fatalf("database has %d records, want >= 10", len(recs))
	}
	prev := 0
	for _, r := range recs {
		if r.Year < prev {
			t.Errorf("records out of order at %s (%d < %d)", r.Name, r.Year, prev)
		}
		prev = r.Year
		if r.PeakFlops <= 0 || r.MemBW <= 0 {
			t.Errorf("%s has non-positive figures", r.Name)
		}
	}
}

func TestFig2ShapeEarlyBalancedLateStarved(t *testing.T) {
	recs := All()
	first, last := recs[0], recs[len(recs)-1]
	if r := first.BytesPerFlop(); r < 1 {
		t.Errorf("earliest machine %s ratio = %g, want >= 1 (balanced era)", first.Name, r)
	}
	if r := last.BytesPerFlop(); r > 0.1 {
		t.Errorf("latest machine %s ratio = %g, want <= 0.1 (starved era)", last.Name, r)
	}
	// Total decline spans at least 1.5 orders of magnitude.
	decline := first.BytesPerFlop() / last.BytesPerFlop()
	if decline < 30 {
		t.Errorf("total decline = %gx, want >= 30x", decline)
	}
}

func TestTrendSlopeNegative(t *testing.T) {
	slope, err := TrendSlope(Series())
	if err != nil {
		t.Fatal(err)
	}
	if slope >= -0.01 {
		t.Errorf("trend slope = %g per year, want clearly negative", slope)
	}
}

func TestTrendSlopeErrors(t *testing.T) {
	if _, err := TrendSlope(nil); err == nil {
		t.Error("empty series accepted")
	}
	if _, err := TrendSlope([]Point{{Year: 2000, Ratio: 1}}); err == nil {
		t.Error("single point accepted")
	}
	bad := []Point{{Year: 2000, Ratio: 1}, {Year: 2001, Ratio: 0}}
	if _, err := TrendSlope(bad); err == nil {
		t.Error("zero ratio accepted")
	}
	same := []Point{{Year: 2000, Ratio: 1}, {Year: 2000, Ratio: 2}}
	if _, err := TrendSlope(same); err == nil {
		t.Error("degenerate year distribution accepted")
	}
}

func TestDecadeMeansMonotoneDecline(t *testing.T) {
	means := DecadeMeans(Series())
	if len(means) < 4 {
		t.Fatalf("decade means has %d entries, want >= 4", len(means))
	}
	for i := 1; i < len(means); i++ {
		if means[i].Ratio >= means[i-1].Ratio {
			t.Errorf("decade %d ratio %g not below decade %d ratio %g",
				means[i].Year, means[i].Ratio, means[i-1].Year, means[i-1].Ratio)
		}
	}
}

func TestDecadeMeansGeometric(t *testing.T) {
	pts := []Point{
		{Year: 1990, Ratio: 0.1},
		{Year: 1991, Ratio: 10},
	}
	means := DecadeMeans(pts)
	if len(means) != 1 {
		t.Fatalf("means = %d entries, want 1", len(means))
	}
	if math.Abs(means[0].Ratio-1.0) > 1e-9 {
		t.Errorf("geometric mean of {0.1, 10} = %g, want 1", means[0].Ratio)
	}
}

func TestSeriesMatchesAll(t *testing.T) {
	recs := All()
	pts := Series()
	if len(pts) != len(recs) {
		t.Fatalf("series length %d != records %d", len(pts), len(recs))
	}
	for i := range recs {
		if pts[i].Name != recs[i].Name {
			t.Errorf("series[%d] = %s, want %s", i, pts[i].Name, recs[i].Name)
		}
		if pts[i].Ratio != recs[i].BytesPerFlop() {
			t.Errorf("series[%d] ratio mismatch", i)
		}
	}
}
