package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"cimrev/internal/crossbar"
	"cimrev/internal/dpe"
	"cimrev/internal/nn"
	"cimrev/internal/noise"
	"cimrev/internal/obs"
	"cimrev/internal/serve"
)

// ObsResult quantifies the tracer's overhead budget (`cimbench -exp obs`,
// `make bench-obs` -> BENCH_obs.json). Three MVM variants isolate the
// kernel-level cost of the obs.Ctx plumbing:
//
//   - untraced:  the plain MVMInto hot path, no Ctx anywhere.
//   - disabled:  the MVMIntoCtx path through a nil tracer — the price every
//     production caller pays when tracing is off (a zero-Ctx branch; the
//     budget in docs/OBSERVABILITY.md is <5% over untraced).
//   - enabled:   full span recording, one root per MVM.
//
// The serve variants measure the end-to-end per-request wall latency of
// the micro-batching pipeline without a tracer vs with a disabled one —
// the serving-layer share of the same budget.
type ObsResult struct {
	// MVMIters / ServeIters are the measured iteration counts.
	MVMIters, ServeIters int
	// MVM ns/op for each variant (wall clock).
	MVMUntracedNS, MVMDisabledNS, MVMEnabledNS float64
	// MVMOverheadPct is (disabled - untraced) / untraced * 100.
	MVMOverheadPct float64
	// Serve per-request wall ns without a tracer vs with a disabled one.
	ServeUntracedNS, ServeDisabledNS float64
	// ServeOverheadPct is (disabled - untraced) / untraced * 100.
	ServeOverheadPct float64
	// SpansRecorded is the span count of the enabled MVM run (one root and
	// its per-block children per MVM).
	SpansRecorded int
}

// ObsOverhead measures the tracer overhead. Wall-clock numbers wobble
// with the host; the artifact records the trend, the hard guarantees live
// in the allocation tests (BenchmarkCrossbarMVMTracingOff asserts the
// disabled path allocates nothing).
func ObsOverhead() (*ObsResult, error) {
	res := &ObsResult{MVMIters: 1000, ServeIters: 512}

	// --- MVM kernel -------------------------------------------------------
	const n = 128
	cfg := crossbar.DefaultConfig()
	cfg.Rows, cfg.Cols = n, n
	xb, err := crossbar.New(cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(909))
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
		for j := range w[i] {
			w[i][j] = rng.Float64()*2 - 1
		}
	}
	if _, err := xb.Program(w); err != nil {
		return nil, err
	}
	in := make([]float64, n)
	for i := range in {
		in[i] = rng.Float64()*2 - 1
	}
	dst := make([]float64, n)
	ns := noise.NewSource(1)

	// Warm up caches and scratch pools before timing anything.
	for i := 0; i < 50; i++ {
		if _, err := xb.MVMInto(dst, in, ns); err != nil {
			return nil, err
		}
	}

	start := time.Now()
	for i := 0; i < res.MVMIters; i++ {
		if _, err := xb.MVMInto(dst, in, ns); err != nil {
			return nil, err
		}
	}
	res.MVMUntracedNS = float64(time.Since(start).Nanoseconds()) / float64(res.MVMIters)

	var off *obs.Tracer // nil tracer: permanently disabled
	start = time.Now()
	for i := 0; i < res.MVMIters; i++ {
		if _, err := xb.MVMIntoCtx(off.Root("bench.mvm"), dst, in, ns); err != nil {
			return nil, err
		}
	}
	res.MVMDisabledNS = float64(time.Since(start).Nanoseconds()) / float64(res.MVMIters)

	tr := obs.New()
	start = time.Now()
	for i := 0; i < res.MVMIters; i++ {
		sp := tr.Root("bench.mvm")
		cost, err := xb.MVMIntoCtx(sp, dst, in, ns)
		sp.End(cost)
		if err != nil {
			return nil, err
		}
	}
	res.MVMEnabledNS = float64(time.Since(start).Nanoseconds()) / float64(res.MVMIters)
	res.SpansRecorded = tr.Len()
	res.MVMOverheadPct = 100 * (res.MVMDisabledNS - res.MVMUntracedNS) / res.MVMUntracedNS

	// --- Serving pipeline -------------------------------------------------
	net, err := nn.NewMLP("obs-bench", []int{32, 24, 10}, rng)
	if err != nil {
		return nil, err
	}
	reqs := make([][]float64, res.ServeIters)
	for i := range reqs {
		reqs[i] = make([]float64, 32)
		for j := range reqs[i] {
			reqs[i][j] = rng.Float64()*2 - 1
		}
	}
	perRequest := func(tracer *obs.Tracer) (float64, error) {
		ecfg := dpe.DefaultConfig()
		ecfg.Crossbar.Rows, ecfg.Crossbar.Cols = 64, 64
		eng, err := dpe.New(ecfg)
		if err != nil {
			return 0, err
		}
		if _, err := eng.Load(net); err != nil {
			return 0, err
		}
		opts := []serve.Option{serve.WithBatch(1, time.Millisecond), serve.WithQueueBound(64)}
		if tracer != nil {
			opts = append(opts, serve.WithTracer(tracer))
		}
		srv, err := serve.New(eng, opts...)
		if err != nil {
			return 0, err
		}
		defer srv.Close()
		for i := 0; i < 32; i++ { // warm-up
			if _, _, err := srv.Infer(reqs[i]); err != nil {
				return 0, err
			}
		}
		start := time.Now()
		for _, in := range reqs {
			if _, _, err := srv.Infer(in); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(start).Nanoseconds()) / float64(len(reqs)), nil
	}
	if res.ServeUntracedNS, err = perRequest(nil); err != nil {
		return nil, err
	}
	disabled := obs.New()
	disabled.Disable()
	if res.ServeDisabledNS, err = perRequest(disabled); err != nil {
		return nil, err
	}
	res.ServeOverheadPct = 100 * (res.ServeDisabledNS - res.ServeUntracedNS) / res.ServeUntracedNS
	return res, nil
}

// BenchFormat renders the measurements as `go test -bench` result lines
// for cmd/benchjson (make bench-obs -> BENCH_obs.json).
func (r *ObsResult) BenchFormat() string {
	var b strings.Builder
	b.WriteString(fmt.Sprintf("BenchmarkObs/mvm_untraced %d %.1f ns/op\n",
		r.MVMIters, r.MVMUntracedNS))
	b.WriteString(fmt.Sprintf("BenchmarkObs/mvm_disabled %d %.1f ns/op %.2f overhead_pct\n",
		r.MVMIters, r.MVMDisabledNS, r.MVMOverheadPct))
	b.WriteString(fmt.Sprintf("BenchmarkObs/mvm_enabled %d %.1f ns/op %d spans\n",
		r.MVMIters, r.MVMEnabledNS, r.SpansRecorded))
	b.WriteString(fmt.Sprintf("BenchmarkObs/serve_untraced %d %.1f ns/op\n",
		r.ServeIters, r.ServeUntracedNS))
	b.WriteString(fmt.Sprintf("BenchmarkObs/serve_disabled %d %.1f ns/op %.2f overhead_pct\n",
		r.ServeIters, r.ServeDisabledNS, r.ServeOverheadPct))
	return b.String()
}

// Format renders the human-readable overhead table.
func (r *ObsResult) Format() string {
	var b strings.Builder
	b.WriteString("Tracer overhead — wall-clock ns/op (docs/OBSERVABILITY.md budget: disabled <5%)\n")
	b.WriteString(fmt.Sprintf("%-18s %12s %10s\n", "variant", "ns/op", "overhead"))
	b.WriteString(fmt.Sprintf("%-18s %12.1f %10s\n", "mvm untraced", r.MVMUntracedNS, "-"))
	b.WriteString(fmt.Sprintf("%-18s %12.1f %9.2f%%\n", "mvm disabled", r.MVMDisabledNS, r.MVMOverheadPct))
	b.WriteString(fmt.Sprintf("%-18s %12.1f %10s (%d spans)\n", "mvm enabled", r.MVMEnabledNS, "-", r.SpansRecorded))
	b.WriteString(fmt.Sprintf("%-18s %12.1f %10s\n", "serve untraced", r.ServeUntracedNS, "-"))
	b.WriteString(fmt.Sprintf("%-18s %12.1f %9.2f%%\n", "serve disabled", r.ServeDisabledNS, r.ServeOverheadPct))
	return b.String()
}
