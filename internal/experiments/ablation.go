package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"cimrev/internal/dpe"
	"cimrev/internal/nn"
	"cimrev/internal/parallel"
	"cimrev/internal/suitability"
	"cimrev/internal/workloads"
)

// ADCRow is one resolution point of the converter ablation.
type ADCRow struct {
	Bits int
	// Accuracy is classification accuracy of a trained network deployed
	// through the full bit-serial analog pipeline at this resolution.
	Accuracy float64
	// SoftwareAccuracy is the float reference.
	SoftwareAccuracy float64
	// EnergyPJ is the per-inference energy.
	EnergyPJ float64
}

// ADCResult is the converter-resolution ablation: the accuracy/energy
// trade that sizes the DPE's ADCs (ISAAC's key design decision).
type ADCResult struct {
	Rows []ADCRow
}

// ADCAblation trains a small classifier once and deploys it repeatedly at
// different ADC resolutions through the honest bit-serial pipeline.
func ADCAblation(bits []int) (*ADCResult, error) {
	if len(bits) == 0 {
		return nil, fmt.Errorf("experiments: empty bits sweep")
	}
	rng := rand.New(rand.NewSource(404))
	const dim, classes = 10, 4
	allIn, allLab, err := nn.MakeBlobs(400, classes, dim, 0.3, rng)
	if err != nil {
		return nil, err
	}
	trainIn, trainLab := allIn[:280], allLab[:280]
	testIn, testLab := allIn[280:], allLab[280:]

	net, err := nn.NewMLP("adc-ablation", []int{dim, 20, classes}, rng)
	if err != nil {
		return nil, err
	}
	if _, err := nn.Train(net, trainIn, trainLab, 25, 0.05, rng); err != nil {
		return nil, err
	}
	swAcc, err := nn.Accuracy(net, testIn, testLab)
	if err != nil {
		return nil, err
	}

	// Resolution points are independent — each deploys the shared trained
	// network (read-only) through its own engine — so they fan out across
	// the worker pool, rows collected in sweep order.
	rows, err := parallel.MapErr(len(bits), func(idx int) (ADCRow, error) {
		b := bits[idx]
		cfg := dpe.DefaultConfig()
		cfg.Crossbar.Functional = false
		cfg.Crossbar.ADCBits = b
		eng, err := dpe.New(cfg)
		if err != nil {
			return ADCRow{}, fmt.Errorf("experiments: adc %d: %w", b, err)
		}
		if _, err := eng.Load(net); err != nil {
			return ADCRow{}, err
		}
		correct := 0
		var lastEnergy float64
		for i, in := range testIn {
			out, cost, err := eng.Infer(in)
			if err != nil {
				return ADCRow{}, err
			}
			lastEnergy = cost.EnergyPJ
			best := 0
			for j := range out {
				if out[j] > out[best] {
					best = j
				}
			}
			if best == testLab[i] {
				correct++
			}
		}
		return ADCRow{
			Bits:             b,
			Accuracy:         float64(correct) / float64(len(testIn)),
			SoftwareAccuracy: swAcc,
			EnergyPJ:         lastEnergy,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &ADCResult{Rows: rows}, nil
}

// Format renders the ablation table.
func (r *ADCResult) Format() string {
	var b strings.Builder
	b.WriteString("Ablation — ADC resolution vs accuracy and energy\n")
	b.WriteString(fmt.Sprintf("%-8s %12s %12s %14s\n", "ADC bits", "accuracy", "software", "pJ/inference"))
	for _, row := range r.Rows {
		b.WriteString(fmt.Sprintf("%-8d %11.1f%% %11.1f%% %14.0f\n",
			row.Bits, 100*row.Accuracy, 100*row.SoftwareAccuracy, row.EnergyPJ))
	}
	return b.String()
}

// NoiseRow is one read-noise point.
type NoiseRow struct {
	// Sigma is the relative analog read-noise standard deviation.
	Sigma float64
	// Accuracy is classification accuracy through the noisy pipeline.
	Accuracy float64
	// SoftwareAccuracy is the float reference.
	SoftwareAccuracy float64
}

// NoiseResult is the analog read-noise ablation.
type NoiseResult struct {
	Rows []NoiseRow
}

// NoiseAblation deploys a trained classifier at increasing analog read
// noise — the device-variability tolerance study that motivates using NN
// inference (noise-tolerant by construction) as CIM's flagship workload.
func NoiseAblation(sigmas []float64) (*NoiseResult, error) {
	if len(sigmas) == 0 {
		return nil, fmt.Errorf("experiments: empty sigma sweep")
	}
	rng := rand.New(rand.NewSource(505))
	const dim, classes = 10, 4
	allIn, allLab, err := nn.MakeBlobs(400, classes, dim, 0.3, rng)
	if err != nil {
		return nil, err
	}
	trainIn, trainLab := allIn[:280], allLab[:280]
	testIn, testLab := allIn[280:], allLab[280:]

	net, err := nn.NewMLP("noise-ablation", []int{dim, 20, classes}, rng)
	if err != nil {
		return nil, err
	}
	if _, err := nn.Train(net, trainIn, trainLab, 25, 0.05, rng); err != nil {
		return nil, err
	}
	swAcc, err := nn.Accuracy(net, testIn, testLab)
	if err != nil {
		return nil, err
	}

	// Noise points fan out across the worker pool, and — because read noise
	// is counter-based, keyed by (engine seed, inference number) — so do the
	// inferences *within* each point: the whole test set goes through
	// InferBatch, whose noisy outputs are bit-identical to a serial Infer
	// loop at any pool width. Rows are collected in sweep order, so results
	// match serial execution exactly. Before the counter-based generator
	// this sweep was the worst case for the worker pool: every noisy point
	// forced itself sequential to preserve RNG draw order.
	rows, err := parallel.MapErr(len(sigmas), func(idx int) (NoiseRow, error) {
		sigma := sigmas[idx]
		if sigma < 0 {
			return NoiseRow{}, fmt.Errorf("experiments: negative noise %g", sigma)
		}
		cfg := dpe.DefaultConfig()
		cfg.Crossbar.Functional = false
		cfg.Crossbar.ReadNoise = sigma
		eng, err := dpe.New(cfg)
		if err != nil {
			return NoiseRow{}, err
		}
		if _, err := eng.Load(net); err != nil {
			return NoiseRow{}, err
		}
		outs, _, err := eng.InferBatch(testIn)
		if err != nil {
			return NoiseRow{}, err
		}
		correct := 0
		for i, out := range outs {
			best := 0
			for j := range out {
				if out[j] > out[best] {
					best = j
				}
			}
			if best == testLab[i] {
				correct++
			}
		}
		return NoiseRow{
			Sigma:            sigma,
			Accuracy:         float64(correct) / float64(len(testIn)),
			SoftwareAccuracy: swAcc,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &NoiseResult{Rows: rows}, nil
}

// Format renders the noise ablation.
func (r *NoiseResult) Format() string {
	var b strings.Builder
	b.WriteString("Ablation — analog read noise vs accuracy\n")
	b.WriteString(fmt.Sprintf("%-10s %12s %12s\n", "sigma", "accuracy", "software"))
	for _, row := range r.Rows {
		b.WriteString(fmt.Sprintf("%-10.3f %11.1f%% %11.1f%%\n",
			row.Sigma, 100*row.Accuracy, 100*row.SoftwareAccuracy))
	}
	return b.String()
}

// ParallelismRow is one point of the application-parallelism sweep.
type ParallelismRow struct {
	Parallelism float64
	Speedup     float64
}

// ParallelismResult addresses the paper's first next-step question (Section
// VII): "Recognizing dominant applications of the future that are suitable
// for CIM will also depend on the application inherent parallelism."
type ParallelismResult struct {
	Rows []ParallelismRow
}

// ParallelismSweep holds an in-array-dominated kernel fixed (a large
// training-scale tensor workload whose time is almost entirely crossbar
// MVMs) and varies only its exploitable parallelism, reporting CIM speedup
// over the Von Neumann baseline at each point. Serial dependences idle the
// massively parallel arrays, so the benefit collapses as parallelism falls
// — the Section VII point that suitability "will also depend on the
// application inherent parallelism".
func ParallelismSweep(points []float64) (*ParallelismResult, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("experiments: empty parallelism sweep")
	}
	base := workloads.Kernel{
		Class:          workloads.NeuralNetworks,
		Flops:          1e12,
		DataBytes:      1e10,
		Rounds:         1e3,
		MVMFrac:        0.999,
		StationaryFrac: 0.95,
		Parallelism:    1,
	}
	vn, err := suitability.VNCost(base)
	if err != nil {
		return nil, err
	}
	rows, err := parallel.MapErr(len(points), func(i int) (ParallelismRow, error) {
		p := points[i]
		k := base
		k.Parallelism = p
		cim, err := suitability.CIMCost(k)
		if err != nil {
			return ParallelismRow{}, fmt.Errorf("experiments: parallelism %g: %w", p, err)
		}
		return ParallelismRow{
			Parallelism: p,
			Speedup:     float64(vn.LatencyPS) / float64(cim.LatencyPS),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &ParallelismResult{Rows: rows}, nil
}

// Format renders the sweep.
func (r *ParallelismResult) Format() string {
	var b strings.Builder
	b.WriteString("Sweep — CIM speedup vs application parallelism (in-array-dominated kernel)\n")
	b.WriteString(fmt.Sprintf("%-14s %10s\n", "parallelism", "speedup"))
	for _, row := range r.Rows {
		b.WriteString(fmt.Sprintf("%-14.2f %9.2fx\n", row.Parallelism, row.Speedup))
	}
	return b.String()
}
