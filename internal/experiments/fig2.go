// Package experiments regenerates every evaluation artifact in the paper:
// Fig 2 (bytes/FLOP decline), Table 1 (approaches to computing), Table 2
// (application suitability), and the Section VI Dot Product Engine results
// (latency, bandwidth, power, scale). Each experiment returns structured
// rows plus a formatted text table, and is driven both by cmd/cimbench and
// by the top-level benchmarks.
//
// Sweep-style experiments (SecVI, Scale, ADCAblation, NoiseAblation,
// ParallelismSweep) fan their independent sweep points across the
// internal/parallel worker pool and collect rows in sweep order, so the
// emitted tables are bit-identical at any pool width — only wall-clock
// time changes. Control the width with cimbench's -parallel flag or
// parallel.SetWidth; see docs/PARALLELISM.md for the determinism argument.
package experiments

import (
	"fmt"
	"strings"

	"cimrev/internal/machines"
)

// Fig2Row is one machine's balance point.
type Fig2Row struct {
	Year  int
	Name  string
	Ratio float64 // bytes per FLOP
}

// Fig2Result is the reproduced Fig 2.
type Fig2Result struct {
	Rows    []Fig2Row
	Decades []Fig2Row
	// Slope is the fitted log10(ratio)/year decline.
	Slope float64
	// TotalDecline is first/last ratio.
	TotalDecline float64
}

// Fig2 regenerates the paper's Fig 2 series.
func Fig2() (*Fig2Result, error) {
	pts := machines.Series()
	res := &Fig2Result{}
	for _, p := range pts {
		res.Rows = append(res.Rows, Fig2Row{Year: p.Year, Name: p.Name, Ratio: p.Ratio})
	}
	for _, p := range machines.DecadeMeans(pts) {
		res.Decades = append(res.Decades, Fig2Row{Year: p.Year, Name: p.Name, Ratio: p.Ratio})
	}
	slope, err := machines.TrendSlope(pts)
	if err != nil {
		return nil, err
	}
	res.Slope = slope
	res.TotalDecline = res.Rows[0].Ratio / res.Rows[len(res.Rows)-1].Ratio
	return res, nil
}

// Format renders the figure as a text table with a log-scale bar.
func (r *Fig2Result) Format() string {
	var b strings.Builder
	b.WriteString("Fig 2 — Memory bandwidth per FLOP (bytes/FLOP)\n")
	b.WriteString(fmt.Sprintf("%-6s %-18s %12s\n", "year", "machine", "bytes/FLOP"))
	for _, row := range r.Rows {
		bar := strings.Repeat("#", barLen(row.Ratio))
		b.WriteString(fmt.Sprintf("%-6d %-18s %12.4f %s\n", row.Year, row.Name, row.Ratio, bar))
	}
	b.WriteString("\nDecade geometric means:\n")
	for _, row := range r.Decades {
		b.WriteString(fmt.Sprintf("  %-6s %10.4f\n", row.Name, row.Ratio))
	}
	b.WriteString(fmt.Sprintf("\ntrend: 10^(%.4f) per year; total decline %.0fx\n", r.Slope, r.TotalDecline))
	return b.String()
}

// barLen maps a ratio onto a log bar: 4.0 -> ~26 chars, 0.004 -> ~0.
func barLen(ratio float64) int {
	n := 0
	for v := ratio; v > 0.004 && n < 40; v /= 1.3 {
		n++
	}
	return n
}
