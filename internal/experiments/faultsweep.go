package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"cimrev/internal/dpe"
	"cimrev/internal/faultinject"
	"cimrev/internal/nn"
	"cimrev/internal/parallel"
)

// FaultRow is one (stuck-cell rate, spare budget) grid point of the
// device-fault sweep.
type FaultRow struct {
	// StuckRate is the per-cell stuck probability, split evenly between
	// stuck-at-GMin and stuck-at-GMax.
	StuckRate float64
	// SpareCols is the per-crossbar spare-column budget.
	SpareCols int
	// Accuracy is classification accuracy through the faulty pipeline
	// after program-and-verify and spare remapping.
	Accuracy float64
	// SoftwareAccuracy is the float reference.
	SoftwareAccuracy float64
	// StuckCells / RemappedCols / LostCols / RetryPulses summarize the
	// engine-wide fault report after loading.
	StuckCells   int
	RemappedCols int
	LostCols     int
	RetryPulses  int64
	// ProgramEnergyPJ is the full program-and-verify energy, retries and
	// spare reprogramming included.
	ProgramEnergyPJ float64
	// InferLatencyPS / InferEnergyPJ are per-inference costs (unchanged
	// by faults: remapping is a programming-time affair).
	InferLatencyPS int64
	InferEnergyPJ  float64
}

// FaultResult is the fault-rate x spare-budget sweep: the Section V.A
// redundancy story quantified. It shows three regimes — spares absorb the
// stuck cells and accuracy holds; spares exhaust and accuracy degrades
// with lost columns; and the programming-energy price of verification
// climbing with the fault rate.
type FaultResult struct {
	Rows []FaultRow
}

// FaultSweep trains a small classifier once, then deploys it across the
// (stuck rate, spare budget) grid. Every grid point is independent and
// fans out across the worker pool; fault positions are a pure function of
// (seed, stage, block, cell), so the whole sweep is bit-identical at any
// pool width. A zero rate with zero spares reproduces the fault-free
// pipeline exactly.
func FaultSweep(rates []float64, spares []int) (*FaultResult, error) {
	if len(rates) == 0 || len(spares) == 0 {
		return nil, fmt.Errorf("experiments: empty fault sweep")
	}
	rng := rand.New(rand.NewSource(606))
	const dim, classes = 10, 4
	allIn, allLab, err := nn.MakeBlobs(400, classes, dim, 0.3, rng)
	if err != nil {
		return nil, err
	}
	trainIn, trainLab := allIn[:280], allLab[:280]
	testIn, testLab := allIn[280:], allLab[280:]

	net, err := nn.NewMLP("fault-sweep", []int{dim, 20, classes}, rng)
	if err != nil {
		return nil, err
	}
	if _, err := nn.Train(net, trainIn, trainLab, 25, 0.05, rng); err != nil {
		return nil, err
	}
	swAcc, err := nn.Accuracy(net, testIn, testLab)
	if err != nil {
		return nil, err
	}

	grid := make([]FaultRow, 0, len(rates)*len(spares))
	for _, rate := range rates {
		for _, sp := range spares {
			grid = append(grid, FaultRow{StuckRate: rate, SpareCols: sp})
		}
	}
	rows, err := parallel.MapErr(len(grid), func(idx int) (FaultRow, error) {
		row := grid[idx]
		if row.StuckRate < 0 || row.StuckRate > 1 {
			return FaultRow{}, fmt.Errorf("experiments: stuck rate %g out of [0, 1]", row.StuckRate)
		}
		cfg := dpe.DefaultConfig()
		cfg.Crossbar.Rows, cfg.Crossbar.Cols = 32, 32
		cfg.Crossbar.SpareCols = row.SpareCols
		if row.StuckRate > 0 {
			cfg.Faults = faultinject.Model{
				StuckLowRate:  row.StuckRate / 2,
				StuckHighRate: row.StuckRate / 2,
				Seed:          707,
			}
		}
		eng, err := dpe.New(cfg)
		if err != nil {
			return FaultRow{}, fmt.Errorf("experiments: fault point (%g, %d): %w",
				row.StuckRate, row.SpareCols, err)
		}
		loadCost, err := eng.Load(net)
		if err != nil {
			return FaultRow{}, err
		}
		rep := eng.HealthCheck().Total
		row.StuckCells = rep.StuckCells
		row.RemappedCols = rep.RemappedCols
		row.LostCols = rep.LostCols
		row.RetryPulses = rep.RetryPulses
		row.ProgramEnergyPJ = loadCost.EnergyPJ

		outs, _, err := eng.InferBatch(testIn)
		if err != nil {
			return FaultRow{}, err
		}
		correct := 0
		for i, out := range outs {
			best := 0
			for j := range out {
				if out[j] > out[best] {
					best = j
				}
			}
			if best == testLab[i] {
				correct++
			}
		}
		row.Accuracy = float64(correct) / float64(len(testIn))
		row.SoftwareAccuracy = swAcc
		if _, perInf, err := eng.Infer(testIn[0]); err == nil {
			row.InferLatencyPS = perInf.LatencyPS
			row.InferEnergyPJ = perInf.EnergyPJ
		} else {
			return FaultRow{}, err
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &FaultResult{Rows: rows}, nil
}

// BenchFormat renders the sweep as `go test -bench` result lines so the
// grid archives through cmd/benchjson (make bench-fault -> BENCH_fault.json).
// ns/op is the simulated per-inference latency; the fault counters and
// energies ride along as custom (value, unit) pairs, which benchjson lands
// in each result's extra map.
func (r *FaultResult) BenchFormat() string {
	var b strings.Builder
	for _, row := range r.Rows {
		b.WriteString(fmt.Sprintf(
			"BenchmarkFault/rate=%g/spares=%d 1 %.3f ns/op %.4f accuracy %d stuck_cells %d remapped_cols %d lost_cols %d retry_pulses %.1f program_pj %.3f infer_pj\n",
			row.StuckRate, row.SpareCols,
			float64(row.InferLatencyPS)/1e3,
			row.Accuracy, row.StuckCells, row.RemappedCols, row.LostCols,
			row.RetryPulses, row.ProgramEnergyPJ, row.InferEnergyPJ))
	}
	return b.String()
}

// Format renders the sweep table.
func (r *FaultResult) Format() string {
	var b strings.Builder
	b.WriteString("Sweep — stuck-cell rate x spare-column budget (program-and-verify + remap)\n")
	b.WriteString(fmt.Sprintf("%-8s %-7s %9s %9s %6s %7s %5s %8s %12s %12s\n",
		"rate", "spares", "accuracy", "software", "stuck", "remap", "lost", "retries", "program pJ", "infer pJ"))
	for _, row := range r.Rows {
		b.WriteString(fmt.Sprintf("%-8.4f %-7d %8.1f%% %8.1f%% %6d %7d %5d %8d %12.0f %12.1f\n",
			row.StuckRate, row.SpareCols, 100*row.Accuracy, 100*row.SoftwareAccuracy,
			row.StuckCells, row.RemappedCols, row.LostCols, row.RetryPulses,
			row.ProgramEnergyPJ, row.InferEnergyPJ))
	}
	return b.String()
}
