package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cimrev/internal/dpe"
	"cimrev/internal/fleet"
	"cimrev/internal/nn"
	"cimrev/internal/serve"
)

// FleetRow is one (routing policy, engine count) grid point of the
// cluster-scale serving sweep.
type FleetRow struct {
	// Policy is the routing policy name; Engines the fleet size.
	Policy  string
	Engines int
	// Requests is the closed-loop request count; Failed how many errored
	// (the zero-downtime contract says none, rolling reprogram included).
	Requests int
	Failed   int
	// SimThroughputRPS is simulated closed-loop throughput: requests
	// divided by the busiest engine's accumulated simulated serving time.
	// Boards serve concurrently in simulated time, so fleet time is the
	// max over engines, not the sum. Deterministic at any -parallel width.
	SimThroughputRPS float64
	// SpeedupVs1 is this row's throughput over the same policy's 1-engine
	// row (1.0 when no 1-engine row is in the sweep).
	SpeedupVs1 float64
	// WallP50NS / WallP99NS are host-side request latency quantiles from
	// the fleet's latency histogram. Wall-clock, not simulated: they vary
	// run to run and exist to show tail behavior, not to be replayed.
	WallP50NS float64
	WallP99NS float64
	// RolledEngines / RollingFailed report the rolling reprogram fired
	// mid-traffic: how many engines swapped to the new weights and how
	// many failed their health gate.
	RolledEngines int
	RollingFailed int
}

// FleetResult is the routing-policy x fleet-size sweep: the serving
// tier's answer to the paper's scale-out question. Simulated throughput
// should scale near-linearly with engine count under every policy — the
// batcher loses a little pipeline-fill efficiency at smaller per-engine
// batches, which is exactly the gap between SpeedupVs1 and Engines.
type FleetResult struct {
	Rows []FleetRow
	// Clients is the closed-loop client count every row ran with.
	Clients int
}

// FleetSweep runs a closed loop of clients against fleets of every
// (policy, engine count) combination, firing one rolling reprogram to a
// second weight set in the middle of each run. Grid points run serially —
// each point saturates the worker pool with its own client goroutines,
// and running them concurrently would contaminate the wall-clock latency
// quantiles. All simulated measurements are bit-identical at any pool
// width; only the WallP* columns are host-dependent.
func FleetSweep(engineCounts []int, policies []string, clients, requests int) (*FleetResult, error) {
	if len(engineCounts) == 0 || len(policies) == 0 {
		return nil, fmt.Errorf("experiments: empty fleet sweep")
	}
	if clients < 1 || requests < 1 {
		return nil, fmt.Errorf("experiments: fleet sweep needs clients >= 1 and requests >= 1, got %d, %d", clients, requests)
	}
	rng := rand.New(rand.NewSource(909))
	const dim, classes = 24, 10
	netA, err := nn.NewMLP("fleet-sweep-a", []int{dim, 32, classes}, rng)
	if err != nil {
		return nil, err
	}
	netB, err := nn.NewMLP("fleet-sweep-b", []int{dim, 32, classes}, rng)
	if err != nil {
		return nil, err
	}
	inputs := make([][]float64, 64)
	for i := range inputs {
		inputs[i] = make([]float64, dim)
		for j := range inputs[i] {
			inputs[i][j] = rng.Float64()*2 - 1
		}
	}

	res := &FleetResult{Clients: clients}
	base := make(map[string]float64) // policy -> 1-engine throughput
	for _, policyName := range policies {
		for _, n := range engineCounts {
			row, err := fleetPoint(netA, netB, inputs, policyName, n, clients, requests)
			if err != nil {
				return nil, err
			}
			if n == 1 {
				base[policyName] = row.SimThroughputRPS
			}
			if b := base[policyName]; b > 0 {
				row.SpeedupVs1 = row.SimThroughputRPS / b
			} else {
				row.SpeedupVs1 = 1
			}
			res.Rows = append(res.Rows, *row)
		}
	}
	return res, nil
}

// fleetPoint measures one grid point: closed-loop clients drive the fleet
// while a rolling reprogram to netB fires mid-run.
func fleetPoint(netA, netB *nn.Network, inputs [][]float64, policyName string, engines, clients, requests int) (*FleetRow, error) {
	policy, err := fleet.ParsePolicy(policyName)
	if err != nil {
		return nil, err
	}
	cfg := dpe.DefaultConfig()
	cfg.Crossbar.Rows, cfg.Crossbar.Cols = 64, 64
	f, _, err := fleet.New(cfg, netA,
		fleet.WithEngines(engines),
		fleet.WithPolicy(policy),
		fleet.WithServeOptions(serve.WithBatch(64, 500*time.Microsecond)),
	)
	if err != nil {
		return nil, fmt.Errorf("experiments: fleet point (%s, %d): %w", policyName, engines, err)
	}
	defer f.Close()

	var next atomic.Uint64
	var failed atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				seq := next.Add(1) - 1
				if seq >= uint64(requests) {
					return
				}
				in := inputs[seq%uint64(len(inputs))]
				if _, _, err := f.SubmitSeq(context.Background(), seq, in); err != nil {
					failed.Add(1)
				}
			}
		}()
	}
	// Zero-downtime witness: roll the whole fleet onto netB while the
	// closed loop is in full flight. Every engine swaps, no request fails.
	rep := f.RollingReprogram(netB)
	wg.Wait()

	row := &FleetRow{
		Policy:        policyName,
		Engines:       engines,
		Requests:      requests,
		Failed:        int(failed.Load()),
		RolledEngines: rep.Succeeded,
		RollingFailed: rep.Failed,
	}
	if ps := f.SimTimePS(); ps > 0 {
		row.SimThroughputRPS = float64(requests) / (float64(ps) * 1e-12)
	}
	lat := f.Registry().Histogram("fleet.latency_ns").Snapshot()
	row.WallP50NS = lat.Quantile(0.5)
	row.WallP99NS = lat.Quantile(0.99)
	return row, nil
}

// BenchFormat renders the sweep as `go test -bench` result lines for
// cmd/benchjson (make bench-fleet -> BENCH_fleet.json). ns/op is the
// simulated per-request serving time on the busiest engine; throughput,
// speedup, wall quantiles, and the rolling-reprogram outcome ride along
// as custom (value, unit) pairs.
func (r *FleetResult) BenchFormat() string {
	var b strings.Builder
	for _, row := range r.Rows {
		simNS := 0.0
		if row.SimThroughputRPS > 0 {
			simNS = 1e9 / row.SimThroughputRPS
		}
		b.WriteString(fmt.Sprintf(
			"BenchmarkFleet/policy=%s/engines=%d 1 %.3f ns/op %.0f sim_rps %.3f speedup_vs_1 %d failed %.0f wall_p50_ns %.0f wall_p99_ns %d rolled_engines %d rolling_failed\n",
			row.Policy, row.Engines, simNS,
			row.SimThroughputRPS, row.SpeedupVs1, row.Failed,
			row.WallP50NS, row.WallP99NS, row.RolledEngines, row.RollingFailed))
	}
	return b.String()
}

// Format renders the sweep table.
func (r *FleetResult) Format() string {
	var b strings.Builder
	b.WriteString(fmt.Sprintf(
		"Fleet — routing policy x engine count (%d closed-loop clients, rolling reprogram mid-run)\n", r.Clients))
	b.WriteString(fmt.Sprintf("%-13s %-8s %9s %13s %8s %7s %12s %12s %7s\n",
		"policy", "engines", "requests", "sim rps", "speedup", "failed", "wall p50", "wall p99", "rolled"))
	for _, row := range r.Rows {
		b.WriteString(fmt.Sprintf("%-13s %-8d %9d %13.0f %7.2fx %7d %10.0fus %10.0fus %4d/%-2d\n",
			row.Policy, row.Engines, row.Requests, row.SimThroughputRPS, row.SpeedupVs1,
			row.Failed, row.WallP50NS/1e3, row.WallP99NS/1e3,
			row.RolledEngines, row.RolledEngines+row.RollingFailed))
	}
	return b.String()
}
