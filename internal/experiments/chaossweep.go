package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cimrev/internal/chaos"
	"cimrev/internal/dpe"
	"cimrev/internal/fleet"
	"cimrev/internal/nn"
	"cimrev/internal/serve"
)

// ChaosRow is one (scenario, hedging) cell of the SLO-retention chaos
// sweep: a fixed fleet driven through one failure scenario, scored against
// the fault-free single-engine oracle.
type ChaosRow struct {
	// Scenario is the chaos scenario name ("none" is the fault-free
	// baseline); Hedged reports whether hedged requests were enabled.
	Scenario string
	Hedged   bool
	// Requests is the offered load; Shed counts requests refused with a
	// capacity error (serve.ErrOverloaded — deliberate load shedding, the
	// overload scenario's design outcome); Lost counts requests that failed
	// any other way. The SLO is Lost == 0 in every scenario: chaos may cost
	// latency or shed under overload, never silently lose a keyed request.
	Requests int
	Shed     int
	Lost     int
	// Mismatched counts successful requests whose output was not
	// bit-identical to the fault-free single-engine oracle. BitIdentical
	// is the contract: Mismatched == 0.
	Mismatched   int
	BitIdentical bool
	// Hedges / HedgeWins / BrownoutSheds are the fleet's resilience
	// counters for the run.
	Hedges, HedgeWins, BrownoutSheds int64
	// WallP50NS / WallP99NS are host-side latency quantiles over successful
	// requests. Wall-clock: they exist to show tail recovery, not to replay.
	WallP50NS, WallP99NS float64
	// RolledEngines / RollingFailed report the rolling reprogram the crash
	// scenario fires mid-run (0 for the other scenarios).
	RolledEngines, RollingFailed int
}

// ChaosResult is the scenario x hedging sweep: the serving tier's SLO
// retention under injected faults. Outputs stay bit-identical to the
// fault-free oracle in every cell — chaos perturbs timing and
// availability, never answers — and no cell loses a keyed request; the
// straggler rows are the hedging headline, where the hedged p99 should
// recover most of the regression the straggler inflicts on the unhedged
// fleet.
type ChaosResult struct {
	Rows []ChaosRow
	// Engines is the fleet size every cell ran with.
	Engines int
}

// chaosSweepEngines is the fleet size for every cell: enough members that
// one faulty engine leaves real failover capacity, small enough that the
// faulty engine still sees a meaningful share of traffic.
const chaosSweepEngines = 3

// ChaosSweep runs every scenario with hedging off and on. A nil scenario
// list selects the full catalog (chaos.ScenarioNames). All cells reuse one
// fault-free single-engine oracle as the bit-identity reference; the
// overload scenario drives the fleet open-loop from a deterministic
// Poisson burst (closed-loop clients self-throttle and cannot overload
// anything), the crash scenario fires a rolling reprogram mid-run so the
// crash window overlaps reprogram hangs, and the rest run closed-loop.
func ChaosSweep(scenarios []string, requests int) (*ChaosResult, error) {
	if scenarios == nil {
		scenarios = chaos.ScenarioNames()
	}
	if len(scenarios) == 0 || requests < 1 {
		return nil, fmt.Errorf("experiments: chaos sweep needs scenarios and requests >= 1")
	}
	// A deliberately small network: the sweep measures tail *recovery*, so
	// the fault-free latency floor must sit well below the injected stalls
	// or the hedge delay cannot separate stuck requests from normal ones.
	rng := rand.New(rand.NewSource(1313))
	const dim, classes = 16, 10
	net, err := nn.NewMLP("chaos-sweep", []int{dim, 16, classes}, rng)
	if err != nil {
		return nil, err
	}
	inputs := make([][]float64, 64)
	for i := range inputs {
		inputs[i] = make([]float64, dim)
		for j := range inputs[i] {
			inputs[i][j] = rng.Float64()*2 - 1
		}
	}

	oracle, err := chaosOracle(net, inputs, requests)
	if err != nil {
		return nil, err
	}
	res := &ChaosResult{Engines: chaosSweepEngines}
	for _, scenario := range scenarios {
		for _, hedged := range []bool{false, true} {
			row, err := chaosPoint(net, inputs, oracle, scenario, hedged, requests)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, *row)
		}
	}
	return res, nil
}

// chaosOracle computes every request's fault-free answer on a single
// chaos-free engine. Keyed noise makes this the unique correct output for
// request seq regardless of fleet size, routing, hedging, or injected
// faults.
func chaosOracle(net *nn.Network, inputs [][]float64, requests int) ([][]float64, error) {
	cfg := chaosDPEConfig()
	f, _, err := fleet.New(cfg, net,
		fleet.WithEngines(1),
		fleet.WithServeOptions(serve.WithBatch(16, 50*time.Microsecond)),
	)
	if err != nil {
		return nil, fmt.Errorf("experiments: chaos oracle: %w", err)
	}
	defer f.Close()
	out := make([][]float64, requests)
	for seq := 0; seq < requests; seq++ {
		o, _, err := f.SubmitSeq(context.Background(), uint64(seq), inputs[seq%len(inputs)])
		if err != nil {
			return nil, fmt.Errorf("experiments: chaos oracle request %d: %w", seq, err)
		}
		out[seq] = o
	}
	return out, nil
}

func chaosDPEConfig() dpe.Config {
	cfg := dpe.DefaultConfig()
	cfg.Crossbar.Rows, cfg.Crossbar.Cols = 64, 64
	return cfg
}

// chaosPoint runs one (scenario, hedging) cell.
func chaosPoint(net *nn.Network, inputs [][]float64, oracle [][]float64, scenario string, hedged bool, requests int) (*ChaosRow, error) {
	// The straggler must stand clear of the fleet's natural latency for the
	// hedge race to be measurable — and that floor is host-timer bound
	// (~2ms on coarse-tick kernels), not compute bound. Scale its stall to
	// ~20ms so a stuck request is unambiguous at any plausible floor. The
	// other scenarios keep canonical scale.
	scale := 1.0
	if scenario == "straggler" {
		scale = 10
	}
	plan, err := chaos.ScenarioPlan(scenario, 1717, scale)
	if err != nil {
		return nil, err
	}
	opts := []fleet.Option{
		fleet.WithEngines(chaosSweepEngines),
		fleet.WithPolicy(fleet.LeastLoaded()),
		fleet.WithChaos(chaos.New(plan)),
		// A small queue bound plus the AIMD limiter keep queueing delay
		// bounded under the overload burst: excess offered load sheds
		// instead of stretching the tail of admitted requests.
		fleet.WithServeOptions(serve.WithBatch(16, 100*time.Microsecond), serve.WithQueueBound(32)),
		fleet.WithOverloadControl(fleet.OverloadConfig{InitialLimit: 16}),
	}
	if hedged {
		// Default p95 tracking and 5% budget. The delay cap must thread a
		// needle: above the fault-free tail (~3-4ms here, so normal requests
		// do not burn hedge tokens and starve the genuinely stuck ones) but
		// far below the straggler stall (so a hedge still saves most of it).
		// The small burst bank keeps total hedge volume a rounding error
		// against the cell's request count.
		opts = append(opts, fleet.WithHedge(fleet.HedgeConfig{MaxDelay: 4 * time.Millisecond, Burst: 8}))
	}
	f, _, err := fleet.New(chaosDPEConfig(), net, opts...)
	if err != nil {
		return nil, fmt.Errorf("experiments: chaos point (%s, hedged=%v): %w", scenario, hedged, err)
	}
	defer f.Close()

	var shed, lost, mismatched atomic.Int64
	submit := func(seq uint64) {
		in := inputs[seq%uint64(len(inputs))]
		pri := fleet.PriorityHigh
		if scenario == "overload" && seq%4 == 3 {
			// A quarter of the burst is deferrable: brownout sheds it first.
			pri = fleet.PriorityLow
		}
		out, _, err := f.SubmitSeqPri(context.Background(), seq, in, pri)
		switch {
		case err == nil:
			if !sliceEqual(out, oracle[seq]) {
				mismatched.Add(1)
			}
		case errors.Is(err, serve.ErrOverloaded):
			shed.Add(1)
		default:
			lost.Add(1)
		}
	}

	rolled, rollFailed := 0, 0
	if scenario == "overload" {
		// Open loop: a deterministic Poisson burst arriving far faster than
		// the spiked fleet can serve. Arrivals do not wait for responses —
		// that is what makes overload reachable — and they follow an
		// absolute schedule rather than per-gap sleeps: the mean gap (5µs)
		// is below the host's sleep granularity, so a sleep-per-arrival loop
		// would silently throttle the burst ~20x. Oversleeping just means
		// the next arrivals fire immediately to catch the schedule up.
		arr := chaos.NewArrivals(plan.Seed, 200_000)
		next := time.Now()
		var wg sync.WaitGroup
		for seq := 0; seq < requests; seq++ {
			next = next.Add(arr.Gap(uint64(seq)))
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			wg.Add(1)
			go func(seq uint64) {
				defer wg.Done()
				submit(seq)
			}(uint64(seq))
		}
		wg.Wait()
	} else {
		var next atomic.Uint64
		var clients sync.WaitGroup
		var roll sync.WaitGroup
		if scenario == "crash" {
			// The crash window races a rolling reprogram (same network, so
			// the oracle stays valid): reprogram hangs pin the roll while
			// engine 0 is dark — the crash-during-rolling-reprogram case.
			roll.Add(1)
			go func() {
				defer roll.Done()
				time.Sleep(2 * time.Millisecond)
				rep := f.RollingReprogram(net)
				rolled, rollFailed = rep.Succeeded, rep.Failed
			}()
		}
		for c := 0; c < 8; c++ {
			clients.Add(1)
			go func() {
				defer clients.Done()
				for {
					seq := next.Add(1) - 1
					if seq >= uint64(requests) {
						return
					}
					submit(seq)
				}
			}()
		}
		clients.Wait()
		roll.Wait()
	}

	reg := f.Registry()
	lat := reg.Histogram("fleet.latency_ns").Snapshot()
	row := &ChaosRow{
		Scenario:      scenario,
		Hedged:        hedged,
		Requests:      requests,
		Shed:          int(shed.Load()),
		Lost:          int(lost.Load()),
		Mismatched:    int(mismatched.Load()),
		BitIdentical:  mismatched.Load() == 0,
		Hedges:        reg.Counter("fleet.hedged").Value(),
		HedgeWins:     reg.Counter("fleet.hedge_won").Value(),
		BrownoutSheds: reg.Counter("fleet.brownout_shed").Value(),
		WallP50NS:     lat.Quantile(0.5),
		WallP99NS:     lat.Quantile(0.99),
		RolledEngines: rolled,
		RollingFailed: rollFailed,
	}
	return row, nil
}

// sliceEqual is exact float comparison — the contract is bit-identity, not
// tolerance.
func sliceEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// BenchFormat renders the sweep as benchmark result lines for
// cmd/benchjson (make bench-chaos -> BENCH_chaos.json, gated by
// -gate-chaos). ns/op is the cell's wall p99 over successful requests; the
// SLO columns ride along as custom (value, unit) pairs.
func (r *ChaosResult) BenchFormat() string {
	var b strings.Builder
	for _, row := range r.Rows {
		hedged := "off"
		if row.Hedged {
			hedged = "on"
		}
		bit := 0
		if row.BitIdentical {
			bit = 1
		}
		b.WriteString(fmt.Sprintf(
			"BenchmarkChaos/scenario=%s/hedged=%s 1 %.0f ns/op %d requests %d shed %d lost %d hedges %d hedge_wins %d brownout_shed %.0f wall_p50_ns %.0f wall_p99_ns %d bit_identical %d rolled_engines %d rolling_failed\n",
			row.Scenario, hedged, row.WallP99NS,
			row.Requests, row.Shed, row.Lost, row.Hedges, row.HedgeWins,
			row.BrownoutSheds, row.WallP50NS, row.WallP99NS, bit,
			row.RolledEngines, row.RollingFailed))
	}
	return b.String()
}

// Format renders the sweep table.
func (r *ChaosResult) Format() string {
	var b strings.Builder
	b.WriteString(fmt.Sprintf(
		"Chaos — SLO retention under injected faults (%d engines, least-loaded, AIMD overload control)\n", r.Engines))
	b.WriteString(fmt.Sprintf("%-11s %-6s %9s %6s %5s %8s %7s %6s %11s %11s %5s\n",
		"scenario", "hedge", "requests", "shed", "lost", "hedges", "wins", "brown", "wall p50", "wall p99", "bits"))
	for _, row := range r.Rows {
		hedged := "off"
		if row.Hedged {
			hedged = "on"
		}
		bits := "OK"
		if !row.BitIdentical {
			bits = fmt.Sprintf("%d!", row.Mismatched)
		}
		b.WriteString(fmt.Sprintf("%-11s %-6s %9d %6d %5d %8d %7d %6d %9.0fus %9.0fus %5s\n",
			row.Scenario, hedged, row.Requests, row.Shed, row.Lost,
			row.Hedges, row.HedgeWins, row.BrownoutSheds,
			row.WallP50NS/1e3, row.WallP99NS/1e3, bits))
	}
	return b.String()
}
