package experiments

import (
	"strings"
	"testing"
)

// TestFleetSweep pins the scaling acceptance bar: simulated closed-loop
// throughput at 4 engines is at least 2x the 1-engine baseline, with zero
// failed requests even though a rolling reprogram fires mid-run.
func TestFleetSweep(t *testing.T) {
	res, err := FleetSweep([]int{1, 4}, []string{"round-robin", "least-loaded"}, 16, 600)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Failed != 0 {
			t.Errorf("%s/%d: %d requests failed during rolling reprogram, want 0",
				row.Policy, row.Engines, row.Failed)
		}
		if row.RolledEngines != row.Engines || row.RollingFailed != 0 {
			t.Errorf("%s/%d: rolled %d engines (%d failed), want %d/0",
				row.Policy, row.Engines, row.RolledEngines, row.RollingFailed, row.Engines)
		}
		if row.SimThroughputRPS <= 0 {
			t.Errorf("%s/%d: degenerate throughput %g", row.Policy, row.Engines, row.SimThroughputRPS)
		}
		if row.Engines == 4 && row.SpeedupVs1 < 2 {
			t.Errorf("%s: 4-engine speedup %.2fx, want >= 2x", row.Policy, row.SpeedupVs1)
		}
	}
	text := res.Format()
	if !strings.Contains(text, "round-robin") || !strings.Contains(text, "speedup") {
		t.Errorf("Format missing expected columns:\n%s", text)
	}
	bench := res.BenchFormat()
	for _, want := range []string{
		"BenchmarkFleet/policy=round-robin/engines=1 1 ",
		"BenchmarkFleet/policy=least-loaded/engines=4 1 ",
		"sim_rps", "speedup_vs_1", "rolled_engines", "rolling_failed",
	} {
		if !strings.Contains(bench, want) {
			t.Errorf("BenchFormat missing %q:\n%s", want, bench)
		}
	}
	// Invalid grids are rejected.
	if _, err := FleetSweep(nil, []string{"rr"}, 1, 1); err == nil {
		t.Error("empty engine grid accepted")
	}
	if _, err := FleetSweep([]int{1}, []string{"bogus"}, 1, 1); err == nil {
		t.Error("unknown policy accepted")
	}
}
