package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestFig2Shape(t *testing.T) {
	res, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 10 {
		t.Fatalf("Fig2 rows = %d", len(res.Rows))
	}
	// Shape criterion E1: monotone decade decline from >= 1 byte/FLOP to
	// <= 0.1, total decline >= 30x, negative trend slope.
	if res.Decades[0].Ratio < 1 {
		t.Errorf("earliest decade ratio = %g, want >= 1", res.Decades[0].Ratio)
	}
	last := res.Decades[len(res.Decades)-1]
	if last.Ratio > 0.2 {
		t.Errorf("latest decade ratio = %g, want <= 0.2", last.Ratio)
	}
	for i := 1; i < len(res.Decades); i++ {
		if res.Decades[i].Ratio >= res.Decades[i-1].Ratio {
			t.Errorf("decade %d not declining", res.Decades[i].Year)
		}
	}
	if res.Slope >= 0 {
		t.Errorf("slope = %g, want negative", res.Slope)
	}
	if res.TotalDecline < 30 {
		t.Errorf("total decline = %g, want >= 30", res.TotalDecline)
	}
	text := res.Format()
	if !strings.Contains(text, "Fig 2") || !strings.Contains(text, "Cray-1") {
		t.Error("Format missing content")
	}
}

func TestTable1Shape(t *testing.T) {
	res, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	// Shape criterion E2: scaling ordering CIM > distributed > parallel,
	// with parallel at "100s of cores" and CIM far beyond exascale-rack
	// counts.
	p, d, c := res.Parallel, res.Distributed, res.InMemory
	if !(c.MaxScale > d.MaxScale && d.MaxScale > p.MaxScale) {
		t.Errorf("scaling order wrong: parallel %d, distributed %d, CIM %d",
			p.MaxScale, d.MaxScale, c.MaxScale)
	}
	if p.MaxScale < 64 || p.MaxScale > 2048 {
		t.Errorf("parallel max scale = %d, want 100s of cores", p.MaxScale)
	}
	if c.MaxScale < 100_000 {
		t.Errorf("CIM max scale = %d, want no perceived limit (>= 1e5)", c.MaxScale)
	}
	// Failure tolerance: whole partition vs machine share vs ~nothing.
	if p.WorkLostPct != 100 {
		t.Errorf("parallel work lost = %g, want 100", p.WorkLostPct)
	}
	if d.WorkLostPct <= c.WorkLostPct || d.WorkLostPct >= p.WorkLostPct {
		t.Errorf("failure ordering wrong: %g / %g / %g", p.WorkLostPct, d.WorkLostPct, c.WorkLostPct)
	}
	if c.WorkLostPct > 1 {
		t.Errorf("CIM work lost = %g%%, want ~0 (stream redirection)", c.WorkLostPct)
	}
	// Security: reachable state shrinks from whole partition to stream.
	if !(c.ReachablePct < d.ReachablePct && d.ReachablePct < p.ReachablePct) {
		t.Errorf("security ordering wrong: %g / %g / %g", p.ReachablePct, d.ReachablePct, c.ReachablePct)
	}
	// Programming models are the paper's row verbatim.
	if p.ProgrammingModel != "multi-threaded" || d.ProgrammingModel != "message passing" || c.ProgrammingModel != "dataflow" {
		t.Error("programming model row wrong")
	}
	text := res.Format()
	if !strings.Contains(text, "dataflow") || !strings.Contains(text, "scaling") {
		t.Error("Format missing content")
	}
}

func TestTable2Agreement(t *testing.T) {
	res, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 14 {
		t.Fatalf("rows = %d, want 14", len(res.Rows))
	}
	// Shape criterion E3: full agreement with the paper's CIM column.
	if res.Agreement < 1.0 {
		for _, row := range res.Rows {
			if !row.Agrees() {
				t.Errorf("%v: measured %v, paper %v (speedup %.2f)",
					row.Class, row.Measured, row.Paper, row.Speedup)
			}
		}
	}
	text := res.Format()
	if !strings.Contains(text, "Neural Networks") || !strings.Contains(text, "agreement") {
		t.Error("Format missing content")
	}
}

func TestSecVIBands(t *testing.T) {
	// Shape criterion E4-E6 over the realistic layer range.
	res, err := SecVI([]int{512, 1024, 2048, 4096})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.LatVsCPU < 10 || row.LatVsCPU > 1e4 {
			t.Errorf("n=%d lat/CPU = %g outside [10, 1e4]", row.N, row.LatVsCPU)
		}
		if row.LatVsGPU < 1 || row.LatVsGPU > 1e2 {
			t.Errorf("n=%d lat/GPU = %g outside [1, 1e2]", row.N, row.LatVsGPU)
		}
		if row.PowVsCPU < 1e2 || row.PowVsCPU > 1e6 {
			t.Errorf("n=%d pow/CPU = %g outside [1e2, 1e6]", row.N, row.PowVsCPU)
		}
		if row.PowVsCPUSingle < 1e3 || row.PowVsCPUSingle > 1e6 {
			t.Errorf("n=%d single-sample pow/CPU = %g outside the paper band [1e3, 1e6]", row.N, row.PowVsCPUSingle)
		}
		if row.PowVsGPU < 10 || row.PowVsGPU > 1e3 {
			t.Errorf("n=%d pow/GPU = %g outside [10, 1e3]", row.N, row.PowVsGPU)
		}
		if row.BWVsCPU < 1e3 || row.BWVsCPU > 1e7 {
			t.Errorf("n=%d bw/CPU = %g outside [1e3, 1e7]", row.N, row.BWVsCPU)
		}
		// "Comparable to modern GPUs": within ~1.5 orders either way.
		if row.BWVsGPU < 0.02 || row.BWVsGPU > 50 {
			t.Errorf("n=%d bw/GPU = %g not comparable", row.N, row.BWVsGPU)
		}
	}
	// Ratios grow with layer size (the win widens as data grows).
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.LatVsCPU <= first.LatVsCPU {
		t.Error("latency advantage does not grow with size")
	}
	if !strings.Contains(res.Format(), "paper bands") {
		t.Error("Format missing bands")
	}
}

func TestSecVIValidation(t *testing.T) {
	if _, err := SecVI(nil); err == nil {
		t.Error("empty sweep accepted")
	}
	if _, err := SecVI([]int{0}); err == nil {
		t.Error("zero size accepted")
	}
}

func TestScaleShape(t *testing.T) {
	res, err := Scale([]int{1, 2, 4, 8}, 256, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Shape criterion E7: near-linear scaling; hiding removes nearly the
	// whole update stall.
	for _, row := range res.Rows {
		if row.Efficiency < 0.5 || row.Efficiency > 1.15 {
			t.Errorf("boards=%d efficiency = %g outside [0.5, 1.15]", row.Boards, row.Efficiency)
		}
		if row.UpdateHiddenPct >= row.UpdateStallPct/10 {
			t.Errorf("boards=%d hiding ineffective: %g%% vs %g%%",
				row.Boards, row.UpdateHiddenPct, row.UpdateStallPct)
		}
		if row.UpdateStallPct < 10 {
			t.Errorf("boards=%d stall = %g%%, expected write asymmetry to dominate", row.Boards, row.UpdateStallPct)
		}
	}
	if !strings.Contains(res.Format(), "boards") {
		t.Error("Format missing content")
	}
}

func TestScaleValidation(t *testing.T) {
	if _, err := Scale(nil, 128, 8); err == nil {
		t.Error("empty boards accepted")
	}
	if _, err := Scale([]int{1}, 0, 8); err == nil {
		t.Error("zero layer accepted")
	}
	if _, err := Scale([]int{1}, 128, 0); err == nil {
		t.Error("zero batch accepted")
	}
}

func TestRatioHelper(t *testing.T) {
	if ratio(10, 0) != 0 {
		t.Error("zero denominator should yield 0")
	}
	if math.Abs(ratio(10, 4)-2.5) > 1e-12 {
		t.Error("ratio wrong")
	}
}

func TestADCAblationShape(t *testing.T) {
	res, err := ADCAblation([]int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Accuracy recovers with resolution: 8-bit must be near software, and
	// must beat 2-bit; energy must grow with resolution.
	r2, r8 := res.Rows[0], res.Rows[2]
	if r8.Accuracy < r8.SoftwareAccuracy-0.05 {
		t.Errorf("8-bit accuracy %.2f fell more than 5pp below software %.2f",
			r8.Accuracy, r8.SoftwareAccuracy)
	}
	if r2.Accuracy >= r8.Accuracy {
		t.Errorf("2-bit accuracy %.2f not below 8-bit %.2f", r2.Accuracy, r8.Accuracy)
	}
	if r8.EnergyPJ <= r2.EnergyPJ {
		t.Errorf("8-bit energy %g not above 2-bit %g", r8.EnergyPJ, r2.EnergyPJ)
	}
	if !strings.Contains(res.Format(), "ADC bits") {
		t.Error("Format missing content")
	}
}

func TestADCAblationValidation(t *testing.T) {
	if _, err := ADCAblation(nil); err == nil {
		t.Error("empty sweep accepted")
	}
	if _, err := ADCAblation([]int{0}); err == nil {
		t.Error("zero bits accepted")
	}
}

func TestNoiseAblationShape(t *testing.T) {
	res, err := NoiseAblation([]float64{0, 0.02, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	clean, mild, heavy := res.Rows[0], res.Rows[1], res.Rows[2]
	// Clean and mild noise preserve accuracy (NN inference is noise
	// tolerant); heavy noise degrades it.
	if clean.Accuracy < clean.SoftwareAccuracy-0.05 {
		t.Errorf("noise-free accuracy %.2f below software %.2f", clean.Accuracy, clean.SoftwareAccuracy)
	}
	if mild.Accuracy < clean.SoftwareAccuracy-0.1 {
		t.Errorf("2%% noise accuracy %.2f collapsed", mild.Accuracy)
	}
	if heavy.Accuracy >= mild.Accuracy {
		t.Errorf("30%% noise accuracy %.2f not below mild %.2f", heavy.Accuracy, mild.Accuracy)
	}
	if !strings.Contains(res.Format(), "sigma") {
		t.Error("Format missing content")
	}
}

func TestNoiseAblationValidation(t *testing.T) {
	if _, err := NoiseAblation(nil); err == nil {
		t.Error("empty sweep accepted")
	}
	if _, err := NoiseAblation([]float64{-0.1}); err == nil {
		t.Error("negative sigma accepted")
	}
}

func TestParallelismSweepShape(t *testing.T) {
	res, err := ParallelismSweep([]float64{0.1, 0.3, 0.6, 0.95})
	if err != nil {
		t.Fatal(err)
	}
	// Speedup is monotone in parallelism, and an NN kernel at high
	// parallelism lands in the "high" benefit regime.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Speedup < res.Rows[i-1].Speedup {
			t.Errorf("speedup not monotone at p=%g", res.Rows[i].Parallelism)
		}
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.Speedup < 5 {
		t.Errorf("at p=%.2f speedup = %.2f, want high (>= 5)", last.Parallelism, last.Speedup)
	}
	// Serial bottlenecks must visibly idle the arrays.
	if last.Speedup < 2*first.Speedup {
		t.Errorf("parallelism dependence too weak: %.2fx at p=%.2f vs %.2fx at p=%.2f",
			first.Speedup, first.Parallelism, last.Speedup, last.Parallelism)
	}
	if !strings.Contains(res.Format(), "parallelism") {
		t.Error("Format missing content")
	}
}

func TestParallelismSweepValidation(t *testing.T) {
	if _, err := ParallelismSweep(nil); err == nil {
		t.Error("empty sweep accepted")
	}
	if _, err := ParallelismSweep([]float64{2.0}); err == nil {
		t.Error("parallelism > 1 accepted")
	}
}
