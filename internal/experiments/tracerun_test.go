package experiments

import (
	"fmt"
	"strings"
	"testing"

	"cimrev/internal/parallel"
)

// TestTraceRunBitIdentical: the traced reference workload's SumRoots fold
// must reproduce the untraced total exactly, at every pool width — this
// is the cimbench -trace correctness witness.
func TestTraceRunBitIdentical(t *testing.T) {
	t.Cleanup(func() { parallel.SetWidth(0) })
	for _, width := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("width=%d", width), func(t *testing.T) {
			parallel.SetWidth(width)
			res, err := TraceRun()
			if err != nil {
				t.Fatal(err)
			}
			if !res.BitIdentical() {
				t.Fatalf("SumRoots %+v != untraced %+v", res.Traced, res.Untraced)
			}
			if res.Dropped != 0 {
				t.Fatalf("tracer dropped %d spans", res.Dropped)
			}
			if len(res.Spans) == 0 {
				t.Fatal("no spans recorded")
			}
			out := res.Format()
			for _, want := range []string{"bit-identical: true", "xbar.mvm", "Cost attribution"} {
				if !strings.Contains(out, want) {
					t.Errorf("Format() missing %q", want)
				}
			}
		})
	}
}

// TestObsOverheadRuns: the overhead measurement completes and renders
// both output formats with every variant present. Wall-clock numbers are
// host-dependent; the hard overhead guarantees are the allocation
// assertions in internal/crossbar (TestMVMTracingOffZeroAllocs).
func TestObsOverheadRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement; skipped in -short")
	}
	res, err := ObsOverhead()
	if err != nil {
		t.Fatal(err)
	}
	if res.MVMUntracedNS <= 0 || res.MVMDisabledNS <= 0 || res.MVMEnabledNS <= 0 {
		t.Fatalf("degenerate MVM timings: %+v", res)
	}
	if res.ServeUntracedNS <= 0 || res.ServeDisabledNS <= 0 {
		t.Fatalf("degenerate serve timings: %+v", res)
	}
	if res.SpansRecorded < res.MVMIters {
		t.Errorf("enabled run recorded %d spans, want >= %d (one root per MVM)",
			res.SpansRecorded, res.MVMIters)
	}
	bench := res.BenchFormat()
	for _, want := range []string{
		"BenchmarkObs/mvm_untraced", "BenchmarkObs/mvm_disabled",
		"BenchmarkObs/mvm_enabled", "BenchmarkObs/serve_untraced",
		"BenchmarkObs/serve_disabled", "overhead_pct",
	} {
		if !strings.Contains(bench, want) {
			t.Errorf("BenchFormat() missing %q", want)
		}
	}
	if !strings.Contains(res.Format(), "mvm disabled") {
		t.Error("Format() missing variant table")
	}
}
