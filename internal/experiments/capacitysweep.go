package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"cimrev/internal/fleet"
	"cimrev/internal/nn"
	"cimrev/internal/serve"
	"cimrev/internal/workloadgen"
)

// CapacityConfig parameterizes the SLO capacity sweep. Zero values select
// the defaults; the schedule of every cell is a pure function of Seed.
type CapacityConfig struct {
	// Engines are the fleet sizes to rate (default 1, 2, 4).
	Engines []int
	// RatesRPS is the ascending offered-rate ladder every fleet size is
	// driven through (default 1k..32k rps). The ladder must straddle the
	// knee: the gate requires at least one failing cell per fleet size,
	// so a ladder the fleet can fully absorb is an error, not a pass.
	RatesRPS []float64
	// Requests is the offered load per cell (default 1200).
	Requests int
	// SLO is the p99 service-latency objective a cell must meet, on top
	// of zero shed and zero lost requests (default 25ms).
	SLO time.Duration
	// Seed keys the arrival schedule and the request-class mix.
	Seed int64
}

// withDefaults fills zero fields.
func (c CapacityConfig) withDefaults() CapacityConfig {
	if c.Engines == nil {
		c.Engines = []int{1, 2, 4}
	}
	if c.RatesRPS == nil {
		// The top rung sits far past the measured knee (~32k req/s on a
		// stock container, host-core bound) and the rest sit well under
		// it: cells should pass or fail decisively, not wobble at the
		// margin.
		c.RatesRPS = []float64{1000, 2000, 4000, 8000, 16000, 64000}
	}
	if c.Requests == 0 {
		c.Requests = 1200
	}
	if c.SLO == 0 {
		c.SLO = 25 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 2121
	}
	return c
}

// validate fails fast on degenerate sweeps.
func (c CapacityConfig) validate() error {
	if len(c.Engines) == 0 || len(c.RatesRPS) == 0 {
		return fmt.Errorf("experiments: capacity sweep needs engines and rates")
	}
	for _, k := range c.Engines {
		if k < 1 {
			return fmt.Errorf("experiments: capacity sweep engines must be >= 1, got %d", k)
		}
	}
	for i, r := range c.RatesRPS {
		if r <= 0 {
			return fmt.Errorf("experiments: capacity sweep rates must be > 0, got %g", r)
		}
		if i > 0 && r <= c.RatesRPS[i-1] {
			return fmt.Errorf("experiments: capacity sweep rates must ascend, got %g after %g", r, c.RatesRPS[i-1])
		}
	}
	if c.Requests < 1 {
		return fmt.Errorf("experiments: capacity sweep needs requests >= 1")
	}
	if c.SLO <= 0 {
		return fmt.Errorf("experiments: capacity sweep needs a positive SLO")
	}
	return nil
}

// CapacityCell is one (engines, offered rate) point of the grid: an
// open-loop Poisson drive with the default request-class mix against a
// fresh fleet, scored against the SLO.
type CapacityCell struct {
	Engines int
	RateRPS float64
	// Requests is the offered load; OKs were served, Shed were refused
	// for capacity (open loop: counted, never retried), Lost failed any
	// other way.
	Requests        int
	OKs, Shed, Lost int64
	// P50NS / P99NS are client-observed service-latency quantiles over
	// served requests (queueing included). LateP99NS is the p99 schedule
	// slip of the generator itself — nonzero lateness means the *driver*
	// could not keep the schedule, a separate failure from backend
	// latency.
	P50NS, P99NS, LateP99NS float64
	// AchievedRPS is served requests over wall time; PeakInFlight is the
	// high-water mark of concurrently outstanding requests — the
	// queue-growth witness a closed loop structurally cannot show.
	AchievedRPS  float64
	PeakInFlight int64
	// Pass is the cell's SLO verdict: zero shed, zero lost, p99 < SLO.
	Pass bool
}

// CapacityRated is the rated capacity of one fleet size: the top of the
// passing prefix of the rate ladder (every rate below it also passed).
type CapacityRated struct {
	Engines  int
	RatedRPS float64 // 0 when even the lowest rate failed
	P99NS    float64 // the rated cell's p99
}

// CapacityCompareRow is one side of the closed-vs-open comparison at the
// top ladder rate: the same fleet, the same request count, driven
// closed-loop (8 clients, retry on shed) and open-loop (the schedule
// does not wait). The closed loop self-throttles — achieved falls short
// of offered with zero shed and a healthy tail, hiding the overload the
// open loop exposes as shed load or a blown p99.
type CapacityCompareRow struct {
	Engines      int
	Mode         string // "closed" or "open"
	OfferedRPS   float64
	AchievedRPS  float64
	Shed, Lost   int64
	P99NS        float64
	PeakInFlight int64
}

// CapacityResult is the full sweep: the grid, the rated capacity per
// fleet size, and the closed-vs-open comparison.
type CapacityResult struct {
	Cells   []CapacityCell
	Rated   []CapacityRated
	Compare []CapacityCompareRow
	SLO     time.Duration
}

// capacityMaxBatch bounds Class.Batch so batch elements get distinct
// noise keys (seq*capacityMaxBatch + element).
const capacityMaxBatch = 8

// CapacitySweep drives every fleet size through the offered-rate ladder
// open-loop and reports rated capacity under the SLO. Every cell runs the
// default request-class mix (batch-1 and batch-8 neural inference plus
// analytics probes) on a fresh fleet; the arrival schedule and class
// sequence are pure functions of cfg.Seed, so two runs offer identical
// load — only the wall-clock outcomes (latency, shed) depend on the host.
func CapacitySweep(cfg CapacityConfig) (*CapacityResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// The same deliberately small network the chaos sweep serves: capacity
	// is a property of the serving tier (batching, queue bounds, engine
	// count), and a small model keeps per-cell wall time manageable.
	rng := rand.New(rand.NewSource(4242))
	const dim, classes = 16, 10
	net, err := nn.NewMLP("capacity-sweep", []int{dim, 16, classes}, rng)
	if err != nil {
		return nil, err
	}
	inputs := make([][]float64, 64)
	for i := range inputs {
		inputs[i] = make([]float64, dim)
		for j := range inputs[i] {
			inputs[i][j] = rng.Float64()*2 - 1
		}
	}
	mix := workloadgen.DefaultMix(cfg.Seed)
	for _, c := range mix.Classes() {
		if c.Batch > capacityMaxBatch {
			return nil, fmt.Errorf("experiments: capacity mix class %s batch %d exceeds %d", c.Name, c.Batch, capacityMaxBatch)
		}
	}

	res := &CapacityResult{SLO: cfg.SLO}
	topRate := cfg.RatesRPS[len(cfg.RatesRPS)-1]
	for _, k := range cfg.Engines {
		rated := CapacityRated{Engines: k}
		prefix := true
		var topCell *CapacityCell
		for _, rate := range cfg.RatesRPS {
			arr, err := workloadgen.NewPoisson(cfg.Seed, rate)
			if err != nil {
				return nil, err
			}
			rep, err := capacityDrive(net, inputs, mix, k, workloadgen.DriveConfig{
				Arrivals: arr,
				Mix:      mix,
				Requests: cfg.Requests,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: capacity cell (K=%d, %g rps): %w", k, rate, err)
			}
			cell := capacityScore(k, rate, rep, cfg.SLO)
			res.Cells = append(res.Cells, cell)
			// Rated capacity is the top of the *passing prefix*: a pass
			// above a failure does not extend the rating — capacity must
			// be sustainable at every rate up to it.
			if prefix && cell.Pass {
				rated.RatedRPS, rated.P99NS = rate, cell.P99NS
			} else {
				prefix = false
			}
			if rate == topRate {
				c := cell
				topCell = &c
			}
		}
		res.Rated = append(res.Rated, rated)

		// The comparison pair at the top ladder rate: the open side is the
		// grid's own top cell; the closed side re-drives the same load
		// with 8 waiting clients.
		closedRep, err := capacityDrive(net, inputs, mix, k, workloadgen.DriveConfig{
			Mix:      mix,
			Requests: cfg.Requests,
			Clients:  8,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: capacity closed-loop (K=%d): %w", k, err)
		}
		res.Compare = append(res.Compare,
			CapacityCompareRow{
				Engines: k, Mode: "closed", OfferedRPS: topRate,
				AchievedRPS: closedRep.AchievedRPS,
				Shed:        closedRep.Sheds, Lost: closedRep.Drops,
				P99NS:        closedRep.Latency.Quantile(0.99),
				PeakInFlight: closedRep.PeakInFlight,
			},
			CapacityCompareRow{
				Engines: k, Mode: "open", OfferedRPS: topRate,
				AchievedRPS: topCell.AchievedRPS,
				Shed:        topCell.Shed, Lost: topCell.Lost,
				P99NS:        topCell.P99NS,
				PeakInFlight: topCell.PeakInFlight,
			})
	}
	return res, nil
}

// capacityDrive builds a fresh K-engine fleet and runs one workloadgen
// drive against it. Request classes map onto the fleet as Batch
// concurrent keyed submissions (distinct noise keys per element); a
// request is served only if every element is.
func capacityDrive(net *nn.Network, inputs [][]float64, mix workloadgen.Mix, k int, dcfg workloadgen.DriveConfig) (workloadgen.Report, error) {
	f, _, err := fleet.New(chaosDPEConfig(), net,
		fleet.WithEngines(k),
		fleet.WithPolicy(fleet.LeastLoaded()),
		// The queue bound is the knee-shaper: below capacity the queue
		// never fills and nothing sheds; above it, excess arrivals shed
		// fast instead of stretching the admitted tail without bound.
		fleet.WithServeOptions(serve.WithBatch(16, 100*time.Microsecond), serve.WithQueueBound(64)),
	)
	if err != nil {
		return workloadgen.Report{}, err
	}
	defer f.Close()

	submit := func(req workloadgen.Request) (workloadgen.Outcome, error) {
		batch := req.Class.Batch
		if batch < 1 {
			batch = 1
		}
		outcomes := make([]workloadgen.Outcome, batch)
		var wg sync.WaitGroup
		for j := 0; j < batch; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				seq := req.Seq*capacityMaxBatch + uint64(j)
				_, _, err := f.SubmitSeq(context.Background(), seq, inputs[seq%uint64(len(inputs))])
				switch {
				case err == nil:
					outcomes[j] = workloadgen.OK
				case errors.Is(err, serve.ErrOverloaded):
					outcomes[j] = workloadgen.Shed
				default:
					outcomes[j] = workloadgen.Drop
				}
			}(j)
		}
		wg.Wait()
		// Worst element wins: a batch with a lost element is lost, else a
		// shed element makes it shed, else it was served.
		worst := workloadgen.OK
		for _, o := range outcomes {
			if o == workloadgen.Drop {
				return workloadgen.Drop, nil
			}
			if o == workloadgen.Shed {
				worst = workloadgen.Shed
			}
		}
		return worst, nil
	}
	return workloadgen.Drive(dcfg, submit)
}

// capacityScore folds a drive report into a scored grid cell.
func capacityScore(k int, rate float64, rep workloadgen.Report, slo time.Duration) CapacityCell {
	cell := CapacityCell{
		Engines:      k,
		RateRPS:      rate,
		Requests:     rep.Requests,
		OKs:          rep.OKs,
		Shed:         rep.Sheds,
		Lost:         rep.Drops,
		P50NS:        rep.Latency.Quantile(0.5),
		P99NS:        rep.Latency.Quantile(0.99),
		LateP99NS:    rep.Lateness.Quantile(0.99),
		AchievedRPS:  rep.AchievedRPS,
		PeakInFlight: rep.PeakInFlight,
	}
	cell.Pass = cell.Shed == 0 && cell.Lost == 0 && cell.P99NS < float64(slo.Nanoseconds())
	return cell
}

// BenchFormat renders the sweep as benchmark result lines for
// cmd/benchjson (make bench-capacity -> BENCH_capacity.json, gated by
// -gate-capacity). ns/op is the cell's service-latency p99; the SLO
// columns ride along as custom (value, unit) pairs so the gate can
// recompute every verdict from raw metrics.
func (r *CapacityResult) BenchFormat() string {
	slo := float64(r.SLO.Nanoseconds())
	var b strings.Builder
	for _, c := range r.Cells {
		pass := 0
		if c.Pass {
			pass = 1
		}
		b.WriteString(fmt.Sprintf(
			"BenchmarkCapacity/engines=%d/rate=%g 1 %.0f ns/op %d requests %d ok %d shed %d lost %.0f p50_ns %.0f late_p99_ns %.1f achieved_rps %d peak_inflight %d pass %.0f slo_ns\n",
			c.Engines, c.RateRPS, c.P99NS, c.Requests, c.OKs, c.Shed, c.Lost,
			c.P50NS, c.LateP99NS, c.AchievedRPS, c.PeakInFlight, pass, slo))
	}
	for _, rt := range r.Rated {
		b.WriteString(fmt.Sprintf(
			"BenchmarkCapacityRated/engines=%d 1 %.0f ns/op %g rated_rps %.0f slo_ns\n",
			rt.Engines, rt.P99NS, rt.RatedRPS, slo))
	}
	for _, row := range r.Compare {
		b.WriteString(fmt.Sprintf(
			"BenchmarkCapacityCompare/engines=%d/mode=%s 1 %.0f ns/op %g offered_rps %.1f achieved_rps %d shed %d lost %d peak_inflight %.0f slo_ns\n",
			row.Engines, row.Mode, row.P99NS, row.OfferedRPS, row.AchievedRPS,
			row.Shed, row.Lost, row.PeakInFlight, slo))
	}
	return b.String()
}

// Format renders the sweep tables.
func (r *CapacityResult) Format() string {
	var b strings.Builder
	b.WriteString(fmt.Sprintf(
		"Capacity — open-loop SLO rating (p99 < %v, zero shed, zero lost; default class mix)\n", r.SLO))
	b.WriteString(fmt.Sprintf("%-3s %9s %9s %6s %5s %11s %11s %12s %8s %5s\n",
		"K", "rate", "achieved", "shed", "lost", "p50", "p99", "late p99", "peak", "SLO"))
	for _, c := range r.Cells {
		verdict := "FAIL"
		if c.Pass {
			verdict = "pass"
		}
		b.WriteString(fmt.Sprintf("%-3d %7.0f/s %7.0f/s %6d %5d %9.0fus %9.0fus %10.0fus %8d %5s\n",
			c.Engines, c.RateRPS, c.AchievedRPS, c.Shed, c.Lost,
			c.P50NS/1e3, c.P99NS/1e3, c.LateP99NS/1e3, c.PeakInFlight, verdict))
	}
	b.WriteString("\nRated capacity (top of the passing prefix):\n")
	for _, rt := range r.Rated {
		b.WriteString(fmt.Sprintf("  K=%d  %8.0f req/s  (p99 %.0fus)\n", rt.Engines, rt.RatedRPS, rt.P99NS/1e3))
	}
	b.WriteString("\nClosed vs open loop at the top ladder rate (what coordinated omission hides):\n")
	b.WriteString(fmt.Sprintf("%-3s %-7s %9s %9s %6s %5s %11s %8s\n",
		"K", "mode", "offered", "achieved", "shed", "lost", "p99", "peak"))
	for _, row := range r.Compare {
		b.WriteString(fmt.Sprintf("%-3d %-7s %7.0f/s %7.0f/s %6d %5d %9.0fus %8d\n",
			row.Engines, row.Mode, row.OfferedRPS, row.AchievedRPS,
			row.Shed, row.Lost, row.P99NS/1e3, row.PeakInFlight))
	}
	return b.String()
}
