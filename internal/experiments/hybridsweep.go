package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"cimrev/internal/dpe"
	"cimrev/internal/hybrid"
	"cimrev/internal/nn"
	"cimrev/internal/suitability"
	"cimrev/internal/vonneumann"
)

// mixedBatch is the flush size of the mixed-workload measurement: small
// enough that tiny models stay Von Neumann territory, big enough that the
// crossbar pipeline amortizes its read cycles on large models.
const mixedBatch = 4

// HybridCell is one (layer size, batch size) grid point of the crossover
// sweep: the measured per-item cost of serving an MLP flush on the
// crossbar engine versus the executing Von Neumann twin.
type HybridCell struct {
	// Size is the MLP width ([size, size, size]); Batch the flush size.
	Size  int
	Batch int
	// FlopsPerByte is the operational intensity of the flush's Von
	// Neumann GEMM (weights + vectors) — the sweep's third axis, the Fig 2
	// quantity that decides which side of the roofline the digital backend
	// lands on.
	FlopsPerByte float64
	// CIMPerItemNS / VNPerItemNS are the measured simulated per-item
	// latencies: the dpe engine's charged batch cost and the twin's
	// roofline-priced batch cost, divided by the batch.
	CIMPerItemNS float64
	VNPerItemNS  float64
	// SpeedupCIM is VN/CIM per-item latency: above 1 the crossbar wins the
	// cell, below 1 the Von Neumann backend does.
	SpeedupCIM float64
	// Rating grades SpeedupCIM on the suitability calculator's scale.
	Rating suitability.Rating
}

// HybridMixed is one dispatch mode's result over the mixed workload: the
// same request stream — every model class in the grid, flush after flush —
// served entirely by the crossbar (cim), entirely by the twin (vn), or
// routed per flush by the calibrated dispatcher (auto).
type HybridMixed struct {
	Mode     string
	Requests int
	// SimThroughputRPS is requests over the summed simulated latency of
	// every flush — a single serving queue draining the mixed stream.
	SimThroughputRPS float64
	// Routing breakdown from the dispatchers' counters.
	CIMRouted int64
	VNRouted  int64
	Pinned    int64
}

// HybridResult is the cost-model-driven dispatch evaluation: the measured
// CIM-vs-CPU crossover grid plus the mixed-workload comparison that the
// hybrid dispatcher must win (auto at least as fast as the best single
// backend). Everything is simulated cost, so the result is bit-identical
// at any worker-pool width.
type HybridResult struct {
	Cells []HybridCell
	Mixed []HybridMixed
	// AutoSpeedupVsBest is auto throughput over the best single-backend
	// throughput: the acceptance number, >= 1 when dispatch pays for
	// itself.
	AutoSpeedupVsBest float64
}

// HybridSweep measures the crossover grid (sizes x batches) and then runs
// the mixed workload — flushes of mixedBatch requests against every model
// class — under all three dispatch modes. flushes is the per-class flush
// count for the mixed phase.
func HybridSweep(sizes, batches []int, flushes int) (*HybridResult, error) {
	if len(sizes) == 0 || len(batches) == 0 {
		return nil, fmt.Errorf("experiments: empty hybrid sweep")
	}
	if flushes < 1 {
		return nil, fmt.Errorf("experiments: hybrid sweep needs flushes >= 1, got %d", flushes)
	}
	cfg := dpe.DefaultConfig()
	res := &HybridResult{}

	nets := make([]*nn.Network, len(sizes))
	for i, size := range sizes {
		rng := rand.New(rand.NewSource(int64(7000 + size)))
		net, err := nn.NewMLP(fmt.Sprintf("hybrid-%d", size), []int{size, size, size}, rng)
		if err != nil {
			return nil, err
		}
		nets[i] = net

		eng, err := dpe.New(cfg)
		if err != nil {
			return nil, err
		}
		if _, err := eng.Load(net); err != nil {
			return nil, err
		}
		twin, err := vonneumann.NewBackend(vonneumann.CPU(), vonneumann.DefaultHierarchy(), cfg.Crossbar, net)
		if err != nil {
			return nil, err
		}
		for _, batch := range batches {
			if batch < 1 {
				return nil, fmt.Errorf("experiments: hybrid sweep batch must be >= 1, got %d", batch)
			}
			ins := hybridInputs(batch, size, int64(size*1000+batch))
			_, cimCost, err := eng.InferBatch(ins)
			if err != nil {
				return nil, err
			}
			vnCost := twin.PredictBatchCost(batch)
			cell := HybridCell{
				Size:         size,
				Batch:        batch,
				FlopsPerByte: hybridIntensity(net, batch),
				CIMPerItemNS: float64(cimCost.LatencyPS) / float64(batch) / 1e3,
				VNPerItemNS:  float64(vnCost.LatencyPS) / float64(batch) / 1e3,
			}
			if cell.CIMPerItemNS > 0 {
				cell.SpeedupCIM = cell.VNPerItemNS / cell.CIMPerItemNS
			}
			cell.Rating = suitability.RatingFor(cell.SpeedupCIM)
			res.Cells = append(res.Cells, cell)
		}
	}

	for _, mode := range []hybrid.Mode{hybrid.ModeCIM, hybrid.ModeVN, hybrid.ModeAuto} {
		m, err := hybridMixed(cfg, mode, sizes, nets, flushes)
		if err != nil {
			return nil, err
		}
		res.Mixed = append(res.Mixed, *m)
	}
	best := 0.0
	for _, m := range res.Mixed[:2] {
		if m.SimThroughputRPS > best {
			best = m.SimThroughputRPS
		}
	}
	if best > 0 {
		res.AutoSpeedupVsBest = res.Mixed[2].SimThroughputRPS / best
	}
	return res, nil
}

// hybridMixed serves the whole model-class mix through one dispatch mode:
// per class a fresh engine+twin+dispatcher, flushes of mixedBatch items
// each, costs summed as one serving queue draining sequentially.
func hybridMixed(cfg dpe.Config, mode hybrid.Mode, sizes []int, nets []*nn.Network, flushes int) (*HybridMixed, error) {
	m := &HybridMixed{Mode: mode.String()}
	var totalPS int64
	for i, net := range nets {
		eng, err := dpe.New(cfg)
		if err != nil {
			return nil, err
		}
		if _, err := eng.Load(net); err != nil {
			return nil, err
		}
		twin, err := vonneumann.NewBackend(vonneumann.CPU(), vonneumann.DefaultHierarchy(), cfg.Crossbar, net)
		if err != nil {
			return nil, err
		}
		disp, err := hybrid.New(eng, twin, hybrid.WithMode(mode))
		if err != nil {
			return nil, err
		}
		for f := 0; f < flushes; f++ {
			ins := hybridInputs(mixedBatch, sizes[i], int64(9000+sizes[i]*100+f))
			_, cost, err := disp.InferBatch(ins)
			if err != nil {
				return nil, err
			}
			totalPS += cost.LatencyPS
			m.Requests += mixedBatch
		}
		cim, vn, pinned := disp.Counts()
		m.CIMRouted += cim
		m.VNRouted += vn
		m.Pinned += pinned
	}
	if totalPS > 0 {
		m.SimThroughputRPS = float64(m.Requests) / (float64(totalPS) * 1e-12)
	}
	return m, nil
}

// hybridInputs builds a deterministic batch of inputs in [-1, 1).
func hybridInputs(n, size int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	ins := make([][]float64, n)
	for i := range ins {
		in := make([]float64, size)
		for j := range in {
			in[j] = rng.Float64()*2 - 1
		}
		ins[i] = in
	}
	return ins
}

// hybridIntensity is the operational intensity (flops/byte) of serving one
// flush of n items through the network's dense stages on a Von Neumann
// machine: the GEMM flops over the weight panel plus per-item vector
// traffic in int32.
func hybridIntensity(net *nn.Network, n int) float64 {
	var flops, bytes float64
	for _, l := range net.Layers {
		d, ok := l.(*nn.Dense)
		if !ok {
			continue
		}
		flops += 2 * float64(n) * float64(d.InSize()) * float64(d.OutSize())
		bytes += 4 * float64(d.InSize()) * float64(d.OutSize())
		bytes += float64(n) * 4 * float64(d.InSize()+d.OutSize())
	}
	if bytes == 0 {
		return 0
	}
	return flops / bytes
}

// BenchFormat renders the sweep as `go test -bench` result lines for
// cmd/benchjson (make bench-hybrid -> BENCH_hybrid.json). Crossover cells
// report both backends' per-item latency and the CIM speedup (rating as
// the suitability scale's ordinal); mixed rows report the dispatched
// throughput the -gate-hybrid check compares.
func (r *HybridResult) BenchFormat() string {
	var b strings.Builder
	for _, c := range r.Cells {
		served := c.CIMPerItemNS
		if c.VNPerItemNS < served {
			served = c.VNPerItemNS
		}
		b.WriteString(fmt.Sprintf(
			"BenchmarkHybridSweep/size=%d/batch=%d 1 %.3f ns/op %.3f cim_ns_per_item %.3f vn_ns_per_item %.4f speedup_cim %.3f flops_per_byte %d rating\n",
			c.Size, c.Batch, served, c.CIMPerItemNS, c.VNPerItemNS, c.SpeedupCIM, c.FlopsPerByte, int(c.Rating)))
	}
	for _, m := range r.Mixed {
		simNS := 0.0
		if m.SimThroughputRPS > 0 {
			simNS = 1e9 / m.SimThroughputRPS
		}
		b.WriteString(fmt.Sprintf(
			"BenchmarkHybridMixed/dispatch=%s 1 %.3f ns/op %.6g sim_req_per_s %d dispatch_cim %d dispatch_vn %d dispatch_pinned_noisy",
			m.Mode, simNS, m.SimThroughputRPS, m.CIMRouted, m.VNRouted, m.Pinned))
		if m.Mode == "auto" {
			b.WriteString(fmt.Sprintf(" %.4f speedup_vs_best", r.AutoSpeedupVsBest))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Format renders the crossover table and the mixed-workload comparison.
func (r *HybridResult) Format() string {
	var b strings.Builder
	b.WriteString("Hybrid dispatch — measured CIM-vs-CPU crossover (per-item simulated latency)\n")
	b.WriteString(fmt.Sprintf("%-6s %-6s %12s %14s %14s %10s %-7s\n",
		"size", "batch", "flops/byte", "cim ns/item", "vn ns/item", "cim gain", "rating"))
	for _, c := range r.Cells {
		b.WriteString(fmt.Sprintf("%-6d %-6d %12.1f %14.1f %14.1f %9.3fx %-7s\n",
			c.Size, c.Batch, c.FlopsPerByte, c.CIMPerItemNS, c.VNPerItemNS, c.SpeedupCIM, c.Rating))
	}
	b.WriteString(fmt.Sprintf("\nMixed workload (%d-item flushes, every model class) by dispatch mode\n", mixedBatch))
	b.WriteString(fmt.Sprintf("%-8s %10s %14s %10s %10s %10s\n",
		"dispatch", "requests", "sim req/s", "cim", "vn", "pinned"))
	for _, m := range r.Mixed {
		b.WriteString(fmt.Sprintf("%-8s %10d %14.0f %10d %10d %10d\n",
			m.Mode, m.Requests, m.SimThroughputRPS, m.CIMRouted, m.VNRouted, m.Pinned))
	}
	b.WriteString(fmt.Sprintf("\nauto vs best single backend: %.3fx\n", r.AutoSpeedupVsBest))
	return b.String()
}
