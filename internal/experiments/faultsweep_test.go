package experiments

import (
	"reflect"
	"testing"

	"cimrev/internal/parallel"
)

// TestFaultSweepRegimes pins the three regimes the sweep exists to show:
// zero rate reproduces the fault-free pipeline; a moderate rate within a
// generous spare budget remaps without losing columns or accuracy floor;
// the same rate with no spares loses columns and reports it.
func TestFaultSweepRegimes(t *testing.T) {
	res, err := FaultSweep([]float64{0, 0.01}, []int{0, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	byPoint := map[[2]int]FaultRow{}
	for _, row := range res.Rows {
		key := [2]int{0, row.SpareCols}
		if row.StuckRate > 0 {
			key[0] = 1
		}
		byPoint[key] = row
	}

	for _, sp := range []int{0, 16} {
		clean := byPoint[[2]int{0, sp}]
		if clean.StuckCells != 0 || clean.RemappedCols != 0 || clean.LostCols != 0 || clean.RetryPulses != 0 {
			t.Fatalf("zero-rate row reports faults: %+v", clean)
		}
		if clean.Accuracy != clean.SoftwareAccuracy && clean.Accuracy < 0.5 {
			t.Fatalf("zero-rate accuracy collapsed: %+v", clean)
		}
	}
	// Fault-free pipeline identical regardless of spare budget.
	if byPoint[[2]int{0, 0}].Accuracy != byPoint[[2]int{0, 16}].Accuracy {
		t.Fatal("spare budget changed the fault-free pipeline")
	}

	spared := byPoint[[2]int{1, 16}]
	if spared.StuckCells == 0 {
		t.Fatalf("1%% stuck rate found no cells: %+v", spared)
	}
	if spared.LostCols != 0 {
		t.Fatalf("spare budget 16 exhausted at 1%%: %+v", spared)
	}
	// Remapped columns and verified programming mean the deployed weights
	// are exactly the intended ones: accuracy matches the clean pipeline.
	if spared.Accuracy != byPoint[[2]int{0, 16}].Accuracy {
		t.Fatalf("remapped accuracy %g != clean %g", spared.Accuracy, byPoint[[2]int{0, 16}].Accuracy)
	}
	if spared.ProgramEnergyPJ <= byPoint[[2]int{0, 16}].ProgramEnergyPJ {
		t.Fatal("verification and remapping charged nothing")
	}

	bare := byPoint[[2]int{1, 0}]
	if bare.LostCols == 0 {
		t.Fatalf("1%% stuck rate with no spares lost nothing: %+v", bare)
	}
	// Inference cost is untouched by faults: remapping happens at
	// programming time.
	if bare.InferLatencyPS != clean0(byPoint).InferLatencyPS ||
		bare.InferEnergyPJ != clean0(byPoint).InferEnergyPJ {
		t.Fatalf("fault injection changed inference cost: %+v vs %+v", bare, clean0(byPoint))
	}
}

func clean0(m map[[2]int]FaultRow) FaultRow { return m[[2]int{0, 0}] }

// TestFaultSweepParallelEquivalence pins sweep determinism: identical rows
// — accuracy, remap counts, energies — at pool widths 1, 4, and 16.
func TestFaultSweepParallelEquivalence(t *testing.T) {
	defer parallel.SetWidth(parallel.Width())
	run := func(width int) *FaultResult {
		parallel.SetWidth(width)
		res, err := FaultSweep([]float64{0, 0.005, 0.02}, []int{0, 8})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	for _, width := range []int{4, 16} {
		if got := run(width); !reflect.DeepEqual(got, ref) {
			t.Fatalf("width %d: fault sweep diverges from serial", width)
		}
	}
}

func TestFaultSweepValidation(t *testing.T) {
	if _, err := FaultSweep(nil, []int{0}); err == nil {
		t.Error("empty rates accepted")
	}
	if _, err := FaultSweep([]float64{0.1}, nil); err == nil {
		t.Error("empty spares accepted")
	}
	if _, err := FaultSweep([]float64{1.5}, []int{0}); err == nil {
		t.Error("rate 1.5 accepted")
	}
}

func TestFaultSweepFormat(t *testing.T) {
	res, err := FaultSweep([]float64{0}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if s := res.Format(); len(s) == 0 {
		t.Fatal("empty format")
	}
}
