package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"cimrev/internal/dpe"
	"cimrev/internal/energy"
	"cimrev/internal/nn"
	"cimrev/internal/obs"
)

// TraceResult is the traced reference workload behind `cimbench -trace`
// and `cimbench -attr`: one engine load plus a few batched inferences run
// twice, once untraced (the cost-algebra reference) and once under an
// obs.Tracer. Because every span carries the exact simulated cost the
// operation returned, obs.SumRoots over the trace must be bit-identical
// to the untraced total — the trace is an exact decomposition of the cost
// ledger, not a sampled approximation of it.
type TraceResult struct {
	// Spans is the traced run's complete span snapshot (retirement order).
	Spans []obs.Span
	// Dropped counts spans discarded by the tracer's retention limit
	// (always 0 for this workload; nonzero would invalidate SumRoots).
	Dropped int64
	// Untraced is the serial driver's Seq-folded total cost without any
	// tracer in the loop.
	Untraced energy.Cost
	// Traced is obs.SumRoots over Spans: the same fold recovered from the
	// trace alone.
	Traced energy.Cost
}

// BitIdentical reports whether the trace's root fold reproduces the
// untraced total exactly (no epsilon: same float operations, same order).
func (r *TraceResult) BitIdentical() bool { return r.Traced == r.Untraced }

// TraceRun executes the reference workload. The driver is serial on
// purpose: each top-level operation is one root span, so the retirement
// order of roots matches the driver's call order and SumRoots applies the
// identical Seq fold the untraced driver applies. (Inside each root the
// engine still fans out across the worker pool; parallelism below the
// root does not disturb the root's inclusive cost.)
func TraceRun() (*TraceResult, error) {
	rng := rand.New(rand.NewSource(808))
	const dim, classes = 64, 10
	const batches, batchSize = 4, 8
	net, err := nn.NewMLP("trace-run", []int{dim, 48, classes}, rng)
	if err != nil {
		return nil, err
	}
	inputs := make([][]float64, batches*batchSize)
	for i := range inputs {
		inputs[i] = make([]float64, dim)
		for j := range inputs[i] {
			inputs[i][j] = rng.Float64()*2 - 1
		}
	}
	cfg := dpe.DefaultConfig()
	cfg.Crossbar.Rows, cfg.Crossbar.Cols = 64, 64

	// Untraced reference: a plain serial driver folding costs with Seq.
	ref, err := dpe.New(cfg)
	if err != nil {
		return nil, err
	}
	untraced, err := ref.Load(net)
	if err != nil {
		return nil, err
	}
	for k := 0; k < batches; k++ {
		chunk := inputs[k*batchSize : (k+1)*batchSize]
		_, cost, err := ref.InferBatch(chunk)
		if err != nil {
			return nil, err
		}
		untraced = untraced.Seq(cost)
	}

	// Traced run: same config, same driver, one root span per operation.
	tr := obs.New()
	eng, err := dpe.New(cfg)
	if err != nil {
		return nil, err
	}
	root := tr.Root("run.load")
	cost, err := eng.LoadCtx(root, net)
	root.End(cost)
	if err != nil {
		return nil, err
	}
	for k := 0; k < batches; k++ {
		chunk := inputs[k*batchSize : (k+1)*batchSize]
		root := tr.Root("run.infer_batch")
		_, cost, err := eng.InferBatchCtx(root, chunk)
		root.End(cost)
		if err != nil {
			return nil, err
		}
	}

	spans := tr.Snapshot()
	return &TraceResult{
		Spans:    spans,
		Dropped:  tr.Dropped(),
		Untraced: untraced,
		Traced:   obs.SumRoots(spans),
	}, nil
}

// Format renders the bit-identity check and the cost-attribution table.
func (r *TraceResult) Format() string {
	roots := 0
	for _, s := range r.Spans {
		if s.Parent == 0 {
			roots++
		}
	}
	var b strings.Builder
	b.WriteString("Trace run — simulated-cost tracing (docs/OBSERVABILITY.md)\n")
	b.WriteString(fmt.Sprintf("spans %d (roots %d, dropped %d)\n", len(r.Spans), roots, r.Dropped))
	b.WriteString(fmt.Sprintf("untraced total:   %s  %s\n",
		energy.FormatLatency(r.Untraced.LatencyPS), energy.FormatEnergy(r.Untraced.EnergyPJ)))
	b.WriteString(fmt.Sprintf("SumRoots(trace):  %s  %s  (bit-identical: %v)\n",
		energy.FormatLatency(r.Traced.LatencyPS), energy.FormatEnergy(r.Traced.EnergyPJ), r.BitIdentical()))
	b.WriteString(obs.FormatAttribution(obs.Attribution(r.Spans), 12))
	return b.String()
}
