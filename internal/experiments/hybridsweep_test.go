package experiments

import (
	"strings"
	"testing"

	"cimrev/internal/parallel"
)

// TestHybridSweepCrossover pins the hybrid dispatch acceptance numbers on
// a small grid: the crossover is real (the Von Neumann twin wins the tiny
// single-item cell, the crossbar wins the large batched cell), and the
// auto dispatcher's mixed-workload throughput is at least the best single
// backend's — routing by the cost model must never lose to refusing to
// route.
func TestHybridSweepCrossover(t *testing.T) {
	res, err := HybridSweep([]int{16, 512}, []int{1, 64}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(res.Cells))
	}
	cell := func(size, batch int) HybridCell {
		for _, c := range res.Cells {
			if c.Size == size && c.Batch == batch {
				return c
			}
		}
		t.Fatalf("missing cell (%d, %d)", size, batch)
		return HybridCell{}
	}
	if c := cell(16, 1); c.SpeedupCIM >= 1 {
		t.Errorf("tiny batch-1 cell: CIM speedup %.3f, want < 1 (VN side of the crossover)", c.SpeedupCIM)
	}
	if c := cell(512, 64); c.SpeedupCIM <= 1 {
		t.Errorf("large batched cell: CIM speedup %.3f, want > 1 (CIM side of the crossover)", c.SpeedupCIM)
	}

	if len(res.Mixed) != 3 {
		t.Fatalf("got %d mixed rows, want 3", len(res.Mixed))
	}
	byMode := map[string]HybridMixed{}
	for _, m := range res.Mixed {
		byMode[m.Mode] = m
	}
	cim, vn, auto := byMode["cim"], byMode["vn"], byMode["auto"]
	if cim.Requests == 0 || cim.Requests != vn.Requests || vn.Requests != auto.Requests {
		t.Fatalf("modes served different workloads: %d, %d, %d", cim.Requests, vn.Requests, auto.Requests)
	}
	if cim.VNRouted != 0 || vn.CIMRouted != 0 {
		t.Errorf("forced modes leaked: cim routed %d to vn, vn routed %d to cim", cim.VNRouted, vn.CIMRouted)
	}
	if auto.CIMRouted == 0 || auto.VNRouted == 0 {
		t.Errorf("auto never split the workload (cim %d, vn %d)", auto.CIMRouted, auto.VNRouted)
	}
	best := cim.SimThroughputRPS
	if vn.SimThroughputRPS > best {
		best = vn.SimThroughputRPS
	}
	if auto.SimThroughputRPS < best {
		t.Errorf("auto %.0f req/s lost to best single backend %.0f req/s", auto.SimThroughputRPS, best)
	}
	if res.AutoSpeedupVsBest < 1 {
		t.Errorf("AutoSpeedupVsBest = %.4f, want >= 1", res.AutoSpeedupVsBest)
	}

	bench := res.BenchFormat()
	for _, want := range []string{
		"BenchmarkHybridSweep/size=16/batch=1 ",
		"BenchmarkHybridSweep/size=512/batch=64 ",
		"BenchmarkHybridMixed/dispatch=cim ",
		"BenchmarkHybridMixed/dispatch=vn ",
		"BenchmarkHybridMixed/dispatch=auto ",
		"sim_req_per_s",
		"speedup_cim",
		"speedup_vs_best",
	} {
		if !strings.Contains(bench, want) {
			t.Errorf("BenchFormat missing %q", want)
		}
	}
}

// TestHybridSweepDeterministicAcrossWidths pins that the sweep — engine
// execution included — is a pure function of its arguments at any
// worker-pool width: simulated costs, routing decisions, and counters all
// match between a serial and a wide run.
func TestHybridSweepDeterministicAcrossWidths(t *testing.T) {
	run := func(w int) *HybridResult {
		parallel.SetWidth(w)
		t.Cleanup(func() { parallel.SetWidth(0) })
		res, err := HybridSweep([]int{16, 128}, []int{1, 8}, 8)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			t.Errorf("cell %d differs across widths: %+v vs %+v", i, a.Cells[i], b.Cells[i])
		}
	}
	for i := range a.Mixed {
		if a.Mixed[i] != b.Mixed[i] {
			t.Errorf("mixed row %d differs across widths: %+v vs %+v", i, a.Mixed[i], b.Mixed[i])
		}
	}
}
