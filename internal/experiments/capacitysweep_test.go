package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestCapacitySweep pins the sweep's acceptance bar on a two-rung ladder
// that straddles the knee by a wide margin: the low rung is rated, the
// top rung is overloaded, and the closed-loop comparison row looks
// healthy at an offered rate the open loop proves unservable — the
// coordinated-omission demonstration in miniature.
func TestCapacitySweep(t *testing.T) {
	const low, high = 2000, 200_000
	res, err := CapacitySweep(CapacityConfig{
		Engines:  []int{1},
		RatesRPS: []float64{low, high},
		Requests: 500,
		SLO:      25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 || len(res.Rated) != 1 || len(res.Compare) != 2 {
		t.Fatalf("got %d cells, %d rated, %d compare rows; want 2/1/2",
			len(res.Cells), len(res.Rated), len(res.Compare))
	}
	slo := float64(res.SLO.Nanoseconds())
	lowCell, topCell := res.Cells[0], res.Cells[1]
	if !lowCell.Pass || lowCell.Shed != 0 || lowCell.Lost != 0 {
		t.Errorf("low-rate cell should pass cleanly: %+v", lowCell)
	}
	if topCell.Pass {
		t.Errorf("cell at %d rps passed; the ladder top must overload the fleet", high)
	}
	if topCell.Shed == 0 && topCell.P99NS <= slo {
		t.Errorf("overloaded cell shows no distress: %+v", topCell)
	}
	if topCell.Lost != 0 {
		t.Errorf("overload lost %d requests; excess load must shed, not fail", topCell.Lost)
	}
	if rated := res.Rated[0]; rated.RatedRPS != low {
		t.Errorf("rated %g rps, want the passing prefix top %d", rated.RatedRPS, low)
	}

	// The comparison pair: the closed loop self-throttles below the
	// offered rate without shedding — it cannot see the overload the open
	// loop exposes.
	var closed, open *CapacityCompareRow
	for i := range res.Compare {
		switch res.Compare[i].Mode {
		case "closed":
			closed = &res.Compare[i]
		case "open":
			open = &res.Compare[i]
		}
	}
	if closed == nil || open == nil {
		t.Fatalf("compare rows missing a mode: %+v", res.Compare)
	}
	if closed.Shed != 0 || closed.Lost != 0 {
		t.Errorf("closed loop shed/lost under overload: %+v", closed)
	}
	if closed.AchievedRPS >= closed.OfferedRPS*0.9 {
		t.Errorf("closed loop achieved %.0f of %.0f offered; the test rate should be unachievable",
			closed.AchievedRPS, closed.OfferedRPS)
	}
	if open.Shed == 0 && open.P99NS <= slo {
		t.Errorf("open loop shows no distress at the same offered rate: %+v", open)
	}

	text := res.Format()
	for _, want := range []string{"Rated capacity", "Closed vs open", "pass", "FAIL"} {
		if !strings.Contains(text, want) {
			t.Errorf("Format missing %q:\n%s", want, text)
		}
	}
	bench := res.BenchFormat()
	for _, want := range []string{
		"BenchmarkCapacity/engines=1/rate=2000 1 ",
		"BenchmarkCapacity/engines=1/rate=200000 1 ",
		"BenchmarkCapacityRated/engines=1 1 ",
		"BenchmarkCapacityCompare/engines=1/mode=closed 1 ",
		"BenchmarkCapacityCompare/engines=1/mode=open 1 ",
		"rated_rps", "slo_ns", "pass", "late_p99_ns", "peak_inflight",
	} {
		if !strings.Contains(bench, want) {
			t.Errorf("BenchFormat missing %q:\n%s", want, bench)
		}
	}
}

// TestCapacityConfigValidation: degenerate grids are rejected.
func TestCapacityConfigValidation(t *testing.T) {
	for name, cfg := range map[string]CapacityConfig{
		"engines 0":        {Engines: []int{0}},
		"rate 0":           {RatesRPS: []float64{0, 100}},
		"rates descending": {RatesRPS: []float64{200, 100}},
		"requests < 0":     {Requests: -1},
		"slo < 0":          {SLO: -time.Second},
	} {
		if _, err := CapacitySweep(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
