package experiments

import (
	"fmt"
	"strings"

	"cimrev/internal/suitability"
)

// Table2Result is the reproduced Table 2.
type Table2Result struct {
	Rows []suitability.Result
	// Agreement is the fraction of classes whose measured rating matches
	// the paper's cell.
	Agreement float64
}

// Table2 regenerates the paper's Table 2 by scoring every application
// class on the CIM and Von Neumann cost models.
func Table2() (*Table2Result, error) {
	rows, err := suitability.Table2()
	if err != nil {
		return nil, err
	}
	agree := 0
	for _, r := range rows {
		if r.Agrees() {
			agree++
		}
	}
	return &Table2Result{
		Rows:      rows,
		Agreement: float64(agree) / float64(len(rows)),
	}, nil
}

// Format renders the measured table next to the paper's verdicts.
func (r *Table2Result) Format() string {
	var b strings.Builder
	b.WriteString("Table 2 — Application suitability for CIM (measured vs paper)\n")
	b.WriteString(fmt.Sprintf("%-28s %10s %10s %10s %10s %7s\n",
		"class", "speedup", "energy x", "measured", "paper", "agree"))
	for _, row := range r.Rows {
		agree := "yes"
		if !row.Agrees() {
			agree = "NO"
		}
		b.WriteString(fmt.Sprintf("%-28s %9.2fx %9.2fx %10s %10s %7s\n",
			row.Class, row.Speedup, row.EnergyX, row.Measured, row.Paper, agree))
	}
	b.WriteString(fmt.Sprintf("\nagreement: %.0f%%\n", 100*r.Agreement))
	return b.String()
}
