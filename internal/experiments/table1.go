package experiments

import (
	"fmt"
	"math"
	"strings"

	"cimrev/internal/cim"
	"cimrev/internal/fault"
	"cimrev/internal/isa"
	"cimrev/internal/packet"
	"cimrev/internal/security"
)

// Table1Row is one measured column of the paper's Table 1 (one approach to
// computing).
type Table1Row struct {
	Approach string
	// ProgrammingModel is the approach's native model (static property).
	ProgrammingModel string
	// MaxScale is the largest unit count with parallel efficiency >= 50%.
	MaxScale int
	// WorkLostPct is the fraction of in-progress work lost when one
	// component fails.
	WorkLostPct float64
	// ReachablePct is the fraction of system state reachable from one
	// compromised component.
	ReachablePct float64
	// Robustness is the approach's robustness locus.
	Robustness string
}

// Table1Result is the reproduced Table 1.
type Table1Result struct {
	Parallel    Table1Row
	Distributed Table1Row
	InMemory    Table1Row
}

// Table1 regenerates the paper's Table 1 by measuring scaling, failure
// blast radius, and attack surface for the three approaches. The
// shared-memory and distributed columns use standard analytic scaling
// models (coherence-limited and sync-limited); the in-memory column is
// measured on the CIM fabric simulator.
func Table1() (*Table1Result, error) {
	res := &Table1Result{
		Parallel: Table1Row{
			Approach:         "parallel (shared memory)",
			ProgrammingModel: "multi-threaded",
			Robustness:       "OS-dependent",
		},
		Distributed: Table1Row{
			Approach:         "distributed",
			ProgrammingModel: "message passing",
			Robustness:       "cluster-dependent",
		},
		InMemory: Table1Row{
			Approach:         "in-memory (CIM)",
			ProgrammingModel: "dataflow",
			Robustness:       "application-specific",
		},
	}

	res.Parallel.MaxScale = maxScale(parallelEfficiency)
	res.Distributed.MaxScale = maxScale(distributedEfficiency)
	res.InMemory.MaxScale = maxScale(cimEfficiency)

	res.Parallel.WorkLostPct = 100 // whole partition fails
	res.Distributed.WorkLostPct = distributedWorkLost()
	lost, err := cimWorkLost()
	if err != nil {
		return nil, err
	}
	res.InMemory.WorkLostPct = lost

	res.Parallel.ReachablePct = 100 // one address space
	res.Distributed.ReachablePct = distributedReachable()
	reach, err := cimReachable()
	if err != nil {
		return nil, err
	}
	res.InMemory.ReachablePct = reach
	return res, nil
}

// parallelEfficiency models a cache-coherent shared-memory machine:
// coherence/interconnect overhead per core grows linearly with core count
// (snoop and directory pressure), halving efficiency in the hundreds of
// cores — the paper's "100s of cores (eg HPE Hawks)".
func parallelEfficiency(n int) float64 {
	const halfAt = 256.0 // cores where coherence halves efficiency
	return 1 / (1 + float64(n)/halfAt)
}

// distributedEfficiency models a message-passing cluster: per-step
// synchronization grows with tree depth log2(n), halving efficiency around
// exascale node counts — the paper's "200 racks (e.g. Exascale)".
func distributedEfficiency(n int) float64 {
	const halfAtDepth = 17.0 // 2^17 = 131072 nodes
	return 1 / (1 + math.Log2(float64(n)+1)/halfAtDepth)
}

// cimEfficiency models the dataflow fabric: no global synchronization at
// all, so efficiency decays only with physical mesh diameter (sqrt of
// units) — the paper's "no perceived limit, higher than exascale".
func cimEfficiency(n int) float64 {
	const halfAtDiameter = 4096.0 // sqrt(units) where diameter bites
	return 1 / (1 + math.Sqrt(float64(n))/halfAtDiameter)
}

// maxScale sweeps unit counts and returns the largest with >= 50%
// efficiency, probing powers of two up to 2^24.
func maxScale(eff func(int) float64) int {
	best := 1
	for n := 1; n <= 1<<24; n *= 2 {
		if eff(n) >= 0.5 {
			best = n
		}
	}
	return best
}

// distributedWorkLost: one machine of a 16-node cluster fails; its share of
// in-progress work is lost and recomputed.
func distributedWorkLost() float64 { return 100.0 / 16 }

// distributedReachable: a compromised node reaches its own memory only
// (machine boundary), 1/16 of the cluster.
func distributedReachable() float64 { return 100.0 / 16 }

// cimWorkLost measures the blast radius on a real fabric: a 16-stage
// pipeline processes 32 streams; one unit fails mid-run with a spare
// registered; the lost fraction is the number of results that never arrive
// even after redirection.
func cimWorkLost() (float64, error) {
	cfg := cim.DefaultConfig()
	cfg.Crossbar.Rows, cfg.Crossbar.Cols = 16, 16
	fabric, err := cim.NewFabric(cfg, nil, nil)
	if err != nil {
		return 0, err
	}
	const stages = 8
	addrs := make([]packet.Address, stages)
	for i := range addrs {
		addrs[i] = packet.Address{Tile: uint16(i % 16), Unit: uint16(i / 16)}
		if _, err := fabric.AddUnit(addrs[i], cim.KindCompute, 1); err != nil {
			return 0, err
		}
		if err := fabric.Configure(addrs[i], isa.FuncForward, nil); err != nil {
			return 0, err
		}
	}
	spare := packet.Address{Tile: 15, Unit: 15}
	if _, err := fabric.AddUnit(spare, cim.KindCompute, 1); err != nil {
		return 0, err
	}
	for i := 1; i < stages; i++ {
		if err := fabric.Connect(addrs[i-1], addrs[i]); err != nil {
			return 0, err
		}
	}
	guard, err := fault.NewGuard(fabric, nil)
	if err != nil {
		return 0, err
	}
	victim := addrs[stages/2]
	if err := guard.AddSpare(victim, spare); err != nil {
		return 0, err
	}

	const streams = 32
	for i := 0; i < streams; i++ {
		if err := guard.StreamHeld(addrs[0], []float64{float64(i)}); err != nil {
			return 0, err
		}
	}
	// Fail mid-pipeline before the run: redirection saves queued work.
	if _, err := guard.Fail(victim); err != nil {
		return 0, err
	}
	out, err := fabric.Run()
	if err != nil {
		return 0, err
	}
	delivered := len(out[addrs[stages-1]])
	lost := streams - delivered
	// Held-data replay recovers any losses; count what replay cannot save.
	if lost > 0 {
		if _, err := guard.Replay(addrs[0]); err != nil {
			return 0, err
		}
		out, err = fabric.Run()
		if err != nil {
			return 0, err
		}
		delivered += len(out[addrs[stages-1]])
		if delivered > streams {
			delivered = streams
		}
		lost = streams - delivered
	}
	return 100 * float64(lost) / float64(streams), nil
}

// cimReachable measures the attack surface on a partitioned fabric: 64
// units under stream-level isolation (one partition per two-unit stream); a
// compromised unit reaches only its own stream — finer than the machine
// boundary of a distributed system.
func cimReachable() (float64, error) {
	cfg := cim.DefaultConfig()
	fabric, err := cim.NewFabric(cfg, nil, nil)
	if err != nil {
		return 0, err
	}
	iso := security.NewIsolator()
	const units = 64
	const partitions = 32
	addrs := make([]packet.Address, units)
	for i := range addrs {
		addrs[i] = packet.Address{Tile: uint16(i % 16), Unit: uint16(i / 16)}
		if _, err := fabric.AddUnit(addrs[i], cim.KindCompute, 1); err != nil {
			return 0, err
		}
		iso.Assign(addrs[i], i%partitions+1)
	}
	compromised := addrs[0]
	reachable := 0
	for _, a := range addrs {
		if iso.Check(compromised, a) == nil {
			reachable++
		}
	}
	return 100 * float64(reachable) / float64(units), nil
}

// Format renders the measured Table 1.
func (r *Table1Result) Format() string {
	var b strings.Builder
	b.WriteString("Table 1 — Comparison of approaches to computing (measured)\n")
	b.WriteString(fmt.Sprintf("%-28s %-18s %-18s %-18s\n", "", "parallel", "distributed", "in-memory"))
	row := func(label string, f func(Table1Row) string) {
		b.WriteString(fmt.Sprintf("%-28s %-18s %-18s %-18s\n",
			label, f(r.Parallel), f(r.Distributed), f(r.InMemory)))
	}
	row("programming model", func(x Table1Row) string { return x.ProgrammingModel })
	row("scaling (units @ >=50% eff)", func(x Table1Row) string { return fmt.Sprintf("%d", x.MaxScale) })
	row("failure: work lost", func(x Table1Row) string { return fmt.Sprintf("%.1f%%", x.WorkLostPct) })
	row("security: reachable state", func(x Table1Row) string { return fmt.Sprintf("%.1f%%", x.ReachablePct) })
	row("robustness", func(x Table1Row) string { return x.Robustness })
	return b.String()
}
