package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"cimrev/internal/dpe"
	"cimrev/internal/energy"
	"cimrev/internal/nn"
	"cimrev/internal/parallel"
	"cimrev/internal/vonneumann"
)

// Section VI metrics and their paper bands:
//
//   - Latency (single-sample inference, the latency-critical case):
//     10-10^4x better than CPUs, 10-10^2x better than GPUs.
//   - Bandwidth: the aggregate rate at which weights are accessed during
//     compute. The DPE touches every stationary weight each pipeline
//     cycle, so its array bandwidth dwarfs the CPU's memory interface by
//     10^3-10^6x, while its per-inference effective bandwidth is
//     comparable to a modern GPU's HBM.
//   - Power (energy per inference, throughput mode: VN machines batch to
//     amortize static power): 10^3-10^6x better than CPUs, 10-10^3x
//     better than GPUs.

// SecVIBatch is the batch size Von Neumann machines use in throughput
// (power) mode.
const SecVIBatch = 64

// BoardCrossbars is how many crossbar arrays a fully-populated DPE board
// carries (ISAAC-scale chips hold on the order of 10^4 arrays per package).
const BoardCrossbars = 16384

// SecVIRow is one layer-size point of the Section VI sweep.
type SecVIRow struct {
	N int // square dense layer dimension

	DPELatencyPS int64
	DPEEnergyPJ  float64

	// Single-sample latency ratios (VN / DPE; bigger favors CIM).
	LatVsCPU, LatVsGPU float64
	// Batched energy-per-inference ratios (throughput mode: the VN
	// machines amortize static power over SecVIBatch samples).
	PowVsCPU, PowVsGPU float64
	// PowVsCPUSingle is the latency-critical single-sample energy ratio,
	// where the CPU's static power burns for the full streaming time.
	PowVsCPUSingle float64
	// Aggregate weight-access bandwidth ratio vs the CPU memory interface.
	BWVsCPU float64
	// Per-inference effective weight bandwidth over GPU HBM bandwidth
	// ("comparable": within roughly an order of magnitude either way).
	BWVsGPU float64
}

// SecVIResult is the reproduced Section VI sweep.
type SecVIResult struct {
	Rows []SecVIRow
}

// denseOnly builds a single n x n dense layer network.
func denseOnly(n int, rng *rand.Rand) (*nn.Network, error) {
	d, err := nn.NewDense(n, n, rng)
	if err != nil {
		return nil, err
	}
	return nn.NewNetwork(fmt.Sprintf("dense-%d", n), d)
}

// vnBatchedCost returns per-sample cost with weights streamed once per
// batch of SecVIBatch samples.
func vnBatchedCost(m vonneumann.Machine, n int) (energy.Cost, error) {
	weightBytes := 4 * float64(n) * float64(n)
	perSampleBytes := weightBytes/SecVIBatch + 4*float64(2*n)
	k := vonneumann.Kernel{
		Name:  "gemv-batched",
		Flops: 2 * float64(n) * float64(n),
		Bytes: perSampleBytes,
	}
	// Launch overhead amortizes across the batch.
	amortized := m
	amortized.LaunchLatencyPS = m.LaunchLatencyPS / SecVIBatch
	return amortized.Run(k)
}

// SecVI sweeps square layer sizes through the DPE and the Von Neumann
// baselines. Sweep points are independent (each owns its RNG, network, and
// engine), so they fan out across the worker pool with rows collected in
// size order — the result is bit-identical at any pool width.
func SecVI(sizes []int) (*SecVIResult, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("experiments: empty size sweep")
	}
	cpu := vonneumann.CPU()
	gpu := vonneumann.GPU()
	rows, err := parallel.MapErr(len(sizes), func(idx int) (SecVIRow, error) {
		n := sizes[idx]
		if n <= 0 {
			return SecVIRow{}, fmt.Errorf("experiments: invalid layer size %d", n)
		}
		rng := rand.New(rand.NewSource(int64(n)))
		net, err := denseOnly(n, rng)
		if err != nil {
			return SecVIRow{}, err
		}
		eng, err := dpe.New(dpe.DefaultConfig())
		if err != nil {
			return SecVIRow{}, err
		}
		if _, err := eng.Load(net); err != nil {
			return SecVIRow{}, err
		}
		in := make([]float64, n)
		for i := range in {
			in[i] = rng.Float64()*2 - 1
		}
		_, dpeCost, err := eng.Infer(in)
		if err != nil {
			return SecVIRow{}, err
		}

		// Single-sample latency on the baselines (weights stream).
		cpuSingle, err := cpu.Run(vonneumann.GEMV(n, n, 4, 32<<20, false))
		if err != nil {
			return SecVIRow{}, err
		}
		gpuSingle, err := gpu.Run(vonneumann.GEMV(n, n, 4, 32<<20, false))
		if err != nil {
			return SecVIRow{}, err
		}
		// Batched energy per inference.
		cpuBatch, err := vnBatchedCost(cpu, n)
		if err != nil {
			return SecVIRow{}, err
		}
		gpuBatch, err := vnBatchedCost(gpu, n)
		if err != nil {
			return SecVIRow{}, err
		}

		// Aggregate array bandwidth for a fully-populated board: every
		// cell of every array is activated each pipeline cycle in
		// throughput mode, so a board of BoardCrossbars arrays touches
		// BoardCrossbars x rows x cols weights per cycle. This is the
		// board-level capability the Section VI bandwidth claim is about;
		// the CPU comparison point is its physical memory interface.
		xb := dpe.DefaultConfig().Crossbar
		cellBytesPerWeight := float64(xb.WeightBits) / 8
		aggBW := BoardCrossbars * float64(xb.Rows*xb.Cols) * cellBytesPerWeight /
			(float64(energy.CrossbarReadLatencyPS) * 1e-12)
		effBW := eng.EffectiveWeightBandwidth(dpeCost)

		return SecVIRow{
			N:              n,
			DPELatencyPS:   dpeCost.LatencyPS,
			DPEEnergyPJ:    dpeCost.EnergyPJ,
			LatVsCPU:       ratio(cpuSingle.LatencyPS, dpeCost.LatencyPS),
			LatVsGPU:       ratio(gpuSingle.LatencyPS, dpeCost.LatencyPS),
			PowVsCPU:       cpuBatch.EnergyPJ / dpeCost.EnergyPJ,
			PowVsGPU:       gpuBatch.EnergyPJ / dpeCost.EnergyPJ,
			PowVsCPUSingle: cpuSingle.EnergyPJ / dpeCost.EnergyPJ,
			BWVsCPU:        aggBW / energy.CPUMemBandwidth,
			BWVsGPU:        effBW / energy.GPUMemBandwidth,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &SecVIResult{Rows: rows}, nil
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Format renders the sweep with the paper's bands.
func (r *SecVIResult) Format() string {
	var b strings.Builder
	b.WriteString("Section VI — Dot Product Engine vs CPU/GPU (measured ratios)\n")
	b.WriteString(fmt.Sprintf("%-6s %12s %11s %11s %11s %12s %11s %11s %11s\n",
		"n", "DPE lat", "lat/CPU", "lat/GPU", "pow/CPU", "pow/CPU(1)", "pow/GPU", "bw/CPU", "bw/GPU"))
	for _, row := range r.Rows {
		b.WriteString(fmt.Sprintf("%-6d %12s %10.0fx %10.1fx %10.0fx %11.0fx %10.1fx %10.0fx %10.2fx\n",
			row.N, energy.FormatLatency(row.DPELatencyPS),
			row.LatVsCPU, row.LatVsGPU, row.PowVsCPU, row.PowVsCPUSingle, row.PowVsGPU,
			row.BWVsCPU, row.BWVsGPU))
	}
	b.WriteString("\npaper bands: lat/CPU 10-10^4, lat/GPU 10-10^2, pow/CPU 10^3-10^6,\n")
	b.WriteString("             pow/GPU 10-10^3, bw/CPU 10^3-10^6, bw/GPU ~comparable\n")
	return b.String()
}

// ScaleRow is one board-count point of the scaling experiment.
type ScaleRow struct {
	Boards int
	// Efficiency is throughput(boards) / (boards x throughput(1)).
	Efficiency float64
	// UpdateStallPct / UpdateHiddenPct: fraction of wall-clock lost to a
	// weight update mid-stream, without and with asymmetry hiding.
	UpdateStallPct  float64
	UpdateHiddenPct float64
}

// ScaleResult is the reproduced Section VI scaling study.
type ScaleResult struct {
	Rows []ScaleRow
}

// Scale runs the multi-board scaling and write-asymmetry-hiding experiment:
// boards split a fixed inference batch; midway, the model is reprogrammed
// either stalling (writes on the critical path) or hidden (shadow arrays).
func Scale(boardCounts []int, layerN, batch int) (*ScaleResult, error) {
	if len(boardCounts) == 0 || layerN <= 0 || batch <= 0 {
		return nil, fmt.Errorf("experiments: invalid scale parameters")
	}
	rng := rand.New(rand.NewSource(7))
	net, err := denseOnly(layerN, rng)
	if err != nil {
		return nil, err
	}
	inputs := make([][]float64, batch)
	for i := range inputs {
		inputs[i] = make([]float64, layerN)
		for j := range inputs[i] {
			inputs[i][j] = rng.Float64()*2 - 1
		}
	}

	// Board-count points are independent (each owns its cluster), so the
	// expensive simulation fans across the worker pool; the efficiency
	// normalization against the one-board point runs in a serial pass
	// afterwards, in sweep order, so results match serial execution.
	type scalePoint struct {
		batchCost, stall, hidden energy.Cost
	}
	points, err := parallel.MapErr(len(boardCounts), func(i int) (scalePoint, error) {
		boards := boardCounts[i]
		cluster, err := dpe.NewCluster(dpe.DefaultConfig(), boards, 1.0, 100e9)
		if err != nil {
			return scalePoint{}, err
		}
		if _, err := cluster.Load(net); err != nil {
			return scalePoint{}, err
		}
		_, batchCost, err := cluster.InferBatch(inputs)
		if err != nil {
			return scalePoint{}, err
		}
		stall, err := cluster.ReprogramAll(net, false)
		if err != nil {
			return scalePoint{}, err
		}
		hidden, err := cluster.ReprogramAll(net, true)
		if err != nil {
			return scalePoint{}, err
		}
		return scalePoint{batchCost: batchCost, stall: stall, hidden: hidden}, nil
	})
	if err != nil {
		return nil, err
	}

	var oneBoard energy.Cost
	res := &ScaleResult{}
	for i, boards := range boardCounts {
		p := points[i]
		if boards == boardCounts[0] && boardCounts[0] == 1 {
			oneBoard = p.batchCost
		}
		eff := 1.0
		if oneBoard.LatencyPS > 0 {
			eff = dpe.ScalingEfficiency(oneBoard, p.batchCost, boards)
		}
		res.Rows = append(res.Rows, ScaleRow{
			Boards:          boards,
			Efficiency:      eff,
			UpdateStallPct:  100 * float64(p.stall.LatencyPS) / float64(p.batchCost.LatencyPS+p.stall.LatencyPS),
			UpdateHiddenPct: 100 * float64(p.hidden.LatencyPS) / float64(p.batchCost.LatencyPS+p.hidden.LatencyPS),
		})
	}
	return res, nil
}

// Format renders the scaling table.
func (r *ScaleResult) Format() string {
	var b strings.Builder
	b.WriteString("Section VI — multi-board scaling and write-asymmetry hiding\n")
	b.WriteString(fmt.Sprintf("%-8s %12s %18s %18s\n",
		"boards", "efficiency", "update stall", "update hidden"))
	for _, row := range r.Rows {
		b.WriteString(fmt.Sprintf("%-8d %11.2f%% %17.1f%% %17.3f%%\n",
			row.Boards, 100*row.Efficiency, row.UpdateStallPct, row.UpdateHiddenPct))
	}
	return b.String()
}
