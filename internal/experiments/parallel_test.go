package experiments

import (
	"testing"

	"cimrev/internal/parallel"
)

// TestSecVIParallelEquivalence is the experiment-harness (E4) leg of the
// determinism contract: the full Section VI sweep — engines programmed,
// inferences run, CPU/GPU baselines evaluated — must emit bit-identical
// rows (latency, energy, and every ratio) at pool widths 1, 4, and 16.
func TestSecVIParallelEquivalence(t *testing.T) {
	t.Cleanup(func() { parallel.SetWidth(0) })

	sizes := []int{64, 96, 128, 160, 192}
	parallel.SetWidth(1)
	ref, err := SecVI(sizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Rows) != len(sizes) {
		t.Fatalf("serial SecVI produced %d rows, want %d", len(ref.Rows), len(sizes))
	}
	for _, w := range []int{4, 16} {
		parallel.SetWidth(w)
		got, err := SecVI(sizes)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Rows) != len(ref.Rows) {
			t.Fatalf("width %d: %d rows, want %d", w, len(got.Rows), len(ref.Rows))
		}
		for i := range got.Rows {
			if got.Rows[i] != ref.Rows[i] {
				t.Fatalf("width %d: row %d differs:\nparallel %+v\nserial   %+v",
					w, i, got.Rows[i], ref.Rows[i])
			}
		}
		// The rendered table is a pure function of the rows, but assert it
		// anyway: this is what cimbench actually prints.
		if got.Format() != ref.Format() {
			t.Fatalf("width %d: formatted table differs from serial", w)
		}
	}
}

// TestScaleParallelEquivalence checks the E7 harness the same way: the
// one-board efficiency normalization must survive the parallel fan-out.
func TestScaleParallelEquivalence(t *testing.T) {
	t.Cleanup(func() { parallel.SetWidth(0) })

	parallel.SetWidth(1)
	ref, err := Scale([]int{1, 2, 4}, 96, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{4, 16} {
		parallel.SetWidth(w)
		got, err := Scale([]int{1, 2, 4}, 96, 12)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got.Rows {
			if got.Rows[i] != ref.Rows[i] {
				t.Fatalf("width %d: scale row %d differs:\nparallel %+v\nserial   %+v",
					w, i, got.Rows[i], ref.Rows[i])
			}
		}
	}
}

// TestNoiseAblationParallelEquivalence guards the subtlest case: the sweep
// is noisy end-to-end, and since the counter-based generator keys every
// draw by position (seed, inference, stage, block, column) rather than by
// draw order, both the sweep points *and* the inferences inside each point
// fan out across the pool without changing any accuracy number.
func TestNoiseAblationParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	t.Cleanup(func() { parallel.SetWidth(0) })

	sigmas := []float64{0, 0.02, 0.1}
	parallel.SetWidth(1)
	ref, err := NoiseAblation(sigmas)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{4, 16} {
		parallel.SetWidth(w)
		got, err := NoiseAblation(sigmas)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got.Rows {
			if got.Rows[i] != ref.Rows[i] {
				t.Fatalf("width %d: noise row %d differs: parallel %+v serial %+v",
					w, i, got.Rows[i], ref.Rows[i])
			}
		}
	}
}
