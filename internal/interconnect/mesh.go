// Package interconnect models the reconfigurable fabric the paper makes "an
// integral part of the CIM model" (Section III): on-board 2D meshes of
// switches between tiles, and distance-insensitive photonic links between
// boards (Section II.A). It also implements the Quality-of-Service
// provisioning of Section IV.B: bandwidth reservations that give one stream
// "minimal performance influence from one stream to another".
package interconnect

import (
	"fmt"
	"sort"
	"sync"

	"cimrev/internal/energy"
	"cimrev/internal/metrics"
)

// Coord is a switch position on a board mesh.
type Coord struct {
	X, Y int
}

// String renders the coordinate.
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Class selects the service class of a transfer.
type Class int

const (
	// BestEffort transfers share the unreserved bandwidth.
	BestEffort Class = iota + 1
	// Guaranteed transfers use bandwidth reserved via ReserveLane.
	Guaranteed
)

type linkKey struct {
	from, to Coord
}

type linkState struct {
	reserved map[uint32]float64 // stream -> reserved fraction
	bytes    float64            // cumulative traffic for load reporting
}

// Mesh is a W x H grid of switches with X-then-Y dimension-ordered routing.
// Mesh is safe for concurrent use.
type Mesh struct {
	w, h   int
	linkBW float64 // bytes/s per link direction

	mu    sync.Mutex
	links map[linkKey]*linkState

	reg *metrics.Registry
}

// NewMesh returns a w x h mesh whose links each carry linkBW bytes/s.
// reg may be nil to disable metrics.
func NewMesh(w, h int, linkBW float64, reg *metrics.Registry) (*Mesh, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("interconnect: mesh dims must be positive, got %dx%d", w, h)
	}
	if linkBW <= 0 {
		return nil, fmt.Errorf("interconnect: link bandwidth must be positive, got %g", linkBW)
	}
	return &Mesh{w: w, h: h, linkBW: linkBW, links: make(map[linkKey]*linkState), reg: reg}, nil
}

// Dims returns the mesh dimensions.
func (m *Mesh) Dims() (w, h int) { return m.w, m.h }

// LinkBandwidth returns the per-link bandwidth in bytes/s.
func (m *Mesh) LinkBandwidth() float64 { return m.linkBW }

func (m *Mesh) inBounds(c Coord) bool {
	return c.X >= 0 && c.X < m.w && c.Y >= 0 && c.Y < m.h
}

// Route returns the XY-ordered path from src to dst, excluding src and
// including dst. An empty path means src == dst.
func (m *Mesh) Route(src, dst Coord) ([]Coord, error) {
	if !m.inBounds(src) {
		return nil, fmt.Errorf("interconnect: src %v outside %dx%d mesh", src, m.w, m.h)
	}
	if !m.inBounds(dst) {
		return nil, fmt.Errorf("interconnect: dst %v outside %dx%d mesh", dst, m.w, m.h)
	}
	var path []Coord
	cur := src
	for cur.X != dst.X {
		if cur.X < dst.X {
			cur.X++
		} else {
			cur.X--
		}
		path = append(path, cur)
	}
	for cur.Y != dst.Y {
		if cur.Y < dst.Y {
			cur.Y++
		} else {
			cur.Y--
		}
		path = append(path, cur)
	}
	return path, nil
}

func (m *Mesh) link(from, to Coord) *linkState {
	k := linkKey{from, to}
	ls, ok := m.links[k]
	if !ok {
		ls = &linkState{reserved: make(map[uint32]float64)}
		m.links[k] = ls
	}
	return ls
}

// ReserveLane reserves fraction of every link's bandwidth along the path
// from src to dst for the given stream (Section IV.B "provisioning enough
// interconnect"). Reservations stack; exceeding 90% total on any link fails
// so best-effort traffic cannot be starved entirely.
func (m *Mesh) ReserveLane(stream uint32, src, dst Coord, fraction float64) error {
	if fraction <= 0 || fraction > 0.9 {
		return fmt.Errorf("interconnect: reservation fraction %g outside (0,0.9]", fraction)
	}
	path, err := m.Route(src, dst)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	// Validate all links before committing any.
	prev := src
	for _, hop := range path {
		ls := m.link(prev, hop)
		var total float64
		for _, f := range ls.reserved {
			total += f
		}
		if total+fraction > 0.9 {
			return fmt.Errorf("interconnect: link %v->%v over-reserved (%.0f%% + %.0f%%)",
				prev, hop, total*100, fraction*100)
		}
		prev = hop
	}
	prev = src
	for _, hop := range path {
		m.link(prev, hop).reserved[stream] += fraction
		prev = hop
	}
	return nil
}

// ReleaseLane removes every reservation held by stream.
func (m *Mesh) ReleaseLane(stream uint32) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, ls := range m.links {
		delete(ls.reserved, stream)
	}
}

// Transfer moves nbytes from src to dst under the given service class and
// returns the cost. Guaranteed transfers use the stream's reserved share of
// each link; best-effort transfers share what is left after reservations.
func (m *Mesh) Transfer(stream uint32, src, dst Coord, nbytes int, class Class) (energy.Cost, error) {
	if nbytes < 0 {
		return energy.Zero, fmt.Errorf("interconnect: negative transfer size %d", nbytes)
	}
	path, err := m.Route(src, dst)
	if err != nil {
		return energy.Zero, err
	}
	if len(path) == 0 || nbytes == 0 {
		return energy.Zero, nil
	}

	m.mu.Lock()
	// Find the bottleneck bandwidth along the path for this class.
	bw := m.linkBW
	prev := src
	for _, hop := range path {
		ls := m.link(prev, hop)
		var reservedTotal float64
		for _, f := range ls.reserved {
			reservedTotal += f
		}
		var avail float64
		switch class {
		case Guaranteed:
			avail = m.linkBW * ls.reserved[stream]
			if avail == 0 {
				m.mu.Unlock()
				return energy.Zero, fmt.Errorf("interconnect: stream %d has no reservation on %v->%v", stream, prev, hop)
			}
		default:
			avail = m.linkBW * (1 - reservedTotal)
		}
		if avail < bw {
			bw = avail
		}
		ls.bytes += float64(nbytes)
		prev = hop
	}
	m.mu.Unlock()

	hops := int64(len(path))
	serialization := energy.PicosecondsFromSeconds(float64(nbytes) / bw)
	cost := energy.Cost{
		LatencyPS: hops*energy.RouterHopLatencyPS + serialization,
		EnergyPJ: float64(nbytes) * (energy.LinkEnergyPJPerByte +
			float64(hops)*energy.RouterHopEnergyPJPerByte),
	}
	if m.reg != nil {
		m.reg.Counter("mesh.transfers").Inc()
		m.reg.Rate("mesh.bytes").Record(float64(nbytes), cost.LatencyPS)
		m.reg.Histogram("mesh.hops").Observe(float64(hops))
	}
	return cost, nil
}

// LinkLoad reports cumulative bytes per link, sorted by descending load —
// the "load information management" input of Section IV.C.
type LinkLoad struct {
	From, To Coord
	Bytes    float64
}

// Loads returns per-link cumulative traffic sorted by descending bytes.
func (m *Mesh) Loads() []LinkLoad {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]LinkLoad, 0, len(m.links))
	for k, ls := range m.links {
		out = append(out, LinkLoad{From: k.from, To: k.to, Bytes: ls.bytes})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		if out[i].From != out[j].From {
			return less(out[i].From, out[j].From)
		}
		return less(out[i].To, out[j].To)
	})
	return out
}

func less(a, b Coord) bool {
	if a.X != b.X {
		return a.X < b.X
	}
	return a.Y < b.Y
}
