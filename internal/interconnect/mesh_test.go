package interconnect

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"cimrev/internal/energy"
	"cimrev/internal/metrics"
)

func newMesh(t *testing.T, w, h int) *Mesh {
	t.Helper()
	m, err := NewMesh(w, h, 10e9, metrics.NewRegistry())
	if err != nil {
		t.Fatalf("NewMesh: %v", err)
	}
	return m
}

func TestNewMeshValidation(t *testing.T) {
	if _, err := NewMesh(0, 4, 1e9, nil); err == nil {
		t.Error("zero width should fail")
	}
	if _, err := NewMesh(4, -1, 1e9, nil); err == nil {
		t.Error("negative height should fail")
	}
	if _, err := NewMesh(4, 4, 0, nil); err == nil {
		t.Error("zero bandwidth should fail")
	}
}

func TestRouteXY(t *testing.T) {
	m := newMesh(t, 4, 4)
	path, err := m.Route(Coord{0, 0}, Coord{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []Coord{{1, 0}, {2, 0}, {2, 1}}
	if !reflect.DeepEqual(path, want) {
		t.Errorf("Route = %v, want %v", path, want)
	}
}

func TestRouteSelf(t *testing.T) {
	m := newMesh(t, 4, 4)
	path, err := m.Route(Coord{1, 1}, Coord{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 0 {
		t.Errorf("self route = %v, want empty", path)
	}
}

func TestRouteNegativeDirections(t *testing.T) {
	m := newMesh(t, 4, 4)
	path, err := m.Route(Coord{3, 3}, Coord{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 6 {
		t.Errorf("path length = %d, want 6", len(path))
	}
	if path[len(path)-1] != (Coord{0, 0}) {
		t.Errorf("path ends at %v, want (0,0)", path[len(path)-1])
	}
}

func TestRouteBounds(t *testing.T) {
	m := newMesh(t, 2, 2)
	if _, err := m.Route(Coord{-1, 0}, Coord{0, 0}); err == nil {
		t.Error("out-of-bounds src should fail")
	}
	if _, err := m.Route(Coord{0, 0}, Coord{2, 0}); err == nil {
		t.Error("out-of-bounds dst should fail")
	}
}

// Property: route length equals Manhattan distance.
func TestRouteManhattanProperty(t *testing.T) {
	m := newMesh(t, 8, 8)
	f := func(sx, sy, dx, dy uint8) bool {
		src := Coord{int(sx) % 8, int(sy) % 8}
		dst := Coord{int(dx) % 8, int(dy) % 8}
		path, err := m.Route(src, dst)
		if err != nil {
			return false
		}
		manhattan := abs(src.X-dst.X) + abs(src.Y-dst.Y)
		return len(path) == manhattan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestTransferCostScalesWithDistanceAndSize(t *testing.T) {
	m := newMesh(t, 8, 8)
	near, err := m.Transfer(1, Coord{0, 0}, Coord{1, 0}, 1000, BestEffort)
	if err != nil {
		t.Fatal(err)
	}
	far, err := m.Transfer(1, Coord{0, 0}, Coord{7, 7}, 1000, BestEffort)
	if err != nil {
		t.Fatal(err)
	}
	if far.LatencyPS <= near.LatencyPS {
		t.Errorf("far transfer %d ps not slower than near %d ps", far.LatencyPS, near.LatencyPS)
	}
	small, err := m.Transfer(1, Coord{0, 0}, Coord{1, 0}, 10, BestEffort)
	if err != nil {
		t.Fatal(err)
	}
	if near.LatencyPS <= small.LatencyPS {
		t.Errorf("1000B transfer %d ps not slower than 10B %d ps", near.LatencyPS, small.LatencyPS)
	}
	if near.EnergyPJ <= small.EnergyPJ {
		t.Error("larger transfer should cost more energy")
	}
}

func TestTransferZeroAndSelf(t *testing.T) {
	m := newMesh(t, 4, 4)
	c, err := m.Transfer(1, Coord{1, 1}, Coord{1, 1}, 1000, BestEffort)
	if err != nil {
		t.Fatal(err)
	}
	if c != energy.Zero {
		t.Errorf("self transfer cost = %v, want zero", c)
	}
	c, err = m.Transfer(1, Coord{0, 0}, Coord{1, 1}, 0, BestEffort)
	if err != nil {
		t.Fatal(err)
	}
	if c != energy.Zero {
		t.Errorf("zero-byte transfer cost = %v, want zero", c)
	}
	if _, err := m.Transfer(1, Coord{0, 0}, Coord{1, 1}, -1, BestEffort); err == nil {
		t.Error("negative size should fail")
	}
}

func TestReserveLaneQoS(t *testing.T) {
	m := newMesh(t, 4, 1)
	src, dst := Coord{0, 0}, Coord{3, 0}

	// Without a reservation, Guaranteed fails.
	if _, err := m.Transfer(7, src, dst, 100, Guaranteed); err == nil {
		t.Error("Guaranteed without reservation should fail")
	}

	if err := m.ReserveLane(7, src, dst, 0.5); err != nil {
		t.Fatal(err)
	}
	g, err := m.Transfer(7, src, dst, 1_000_000, Guaranteed)
	if err != nil {
		t.Fatal(err)
	}
	be, err := m.Transfer(8, src, dst, 1_000_000, BestEffort)
	if err != nil {
		t.Fatal(err)
	}
	// Both see 50% of the link: reserved share vs unreserved remainder.
	if g.LatencyPS != be.LatencyPS {
		t.Errorf("guaranteed %d ps vs best-effort %d ps, want equal at 50/50 split", g.LatencyPS, be.LatencyPS)
	}

	// A second large reservation squeezes best-effort but not stream 7.
	if err := m.ReserveLane(9, src, dst, 0.4); err != nil {
		t.Fatal(err)
	}
	g2, err := m.Transfer(7, src, dst, 1_000_000, Guaranteed)
	if err != nil {
		t.Fatal(err)
	}
	if g2.LatencyPS != g.LatencyPS {
		t.Errorf("guaranteed latency changed %d -> %d under interference", g.LatencyPS, g2.LatencyPS)
	}
	be2, err := m.Transfer(8, src, dst, 1_000_000, BestEffort)
	if err != nil {
		t.Fatal(err)
	}
	if be2.LatencyPS <= be.LatencyPS {
		t.Errorf("best-effort latency %d should grow after more reservation (was %d)", be2.LatencyPS, be.LatencyPS)
	}
}

func TestReserveLaneOverSubscription(t *testing.T) {
	m := newMesh(t, 2, 1)
	src, dst := Coord{0, 0}, Coord{1, 0}
	if err := m.ReserveLane(1, src, dst, 0.6); err != nil {
		t.Fatal(err)
	}
	if err := m.ReserveLane(2, src, dst, 0.6); err == nil {
		t.Error("over-subscription should fail")
	}
	if err := m.ReserveLane(3, src, dst, 0.95); err == nil {
		t.Error("fraction > 0.9 should fail")
	}
	if err := m.ReserveLane(3, src, dst, 0); err == nil {
		t.Error("zero fraction should fail")
	}
}

func TestReleaseLane(t *testing.T) {
	m := newMesh(t, 2, 1)
	src, dst := Coord{0, 0}, Coord{1, 0}
	if err := m.ReserveLane(1, src, dst, 0.9); err != nil {
		t.Fatal(err)
	}
	m.ReleaseLane(1)
	// Full reservation is available again.
	if err := m.ReserveLane(2, src, dst, 0.9); err != nil {
		t.Errorf("reservation after release failed: %v", err)
	}
	// Released stream can no longer transfer guaranteed.
	if _, err := m.Transfer(1, src, dst, 10, Guaranteed); err == nil {
		t.Error("released stream should have no guaranteed lane")
	}
}

func TestLoads(t *testing.T) {
	m := newMesh(t, 3, 1)
	// Two transfers cross link (0,0)->(1,0); one crosses (1,0)->(2,0).
	if _, err := m.Transfer(1, Coord{0, 0}, Coord{1, 0}, 100, BestEffort); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Transfer(1, Coord{0, 0}, Coord{2, 0}, 100, BestEffort); err != nil {
		t.Fatal(err)
	}
	loads := m.Loads()
	if len(loads) != 2 {
		t.Fatalf("Loads returned %d links, want 2", len(loads))
	}
	if loads[0].Bytes != 200 || loads[0].From != (Coord{0, 0}) {
		t.Errorf("hottest link = %+v, want (0,0)->(1,0) with 200B", loads[0])
	}
	if loads[1].Bytes != 100 {
		t.Errorf("second link bytes = %g, want 100", loads[1].Bytes)
	}
}

func TestMeshMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	m, err := NewMesh(4, 4, 1e9, reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Transfer(1, Coord{0, 0}, Coord{3, 3}, 100, BestEffort); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if s.Counters["mesh.transfers"] != 1 {
		t.Errorf("mesh.transfers = %d, want 1", s.Counters["mesh.transfers"])
	}
	if got := s.Histograms["mesh.hops"].Mean(); got != 6 {
		t.Errorf("mesh.hops mean = %g, want 6", got)
	}
}

func TestPhotonicLinkDistanceIndependentEnergy(t *testing.T) {
	short, err := NewPhotonicLink(0.1, 100e9)
	if err != nil {
		t.Fatal(err)
	}
	long, err := NewPhotonicLink(1000, 100e9)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := short.Transfer(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := long.Transfer(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if cs.EnergyPJ != cl.EnergyPJ {
		t.Errorf("photonic energy must be distance-independent: %g vs %g", cs.EnergyPJ, cl.EnergyPJ)
	}
	if cl.LatencyPS <= cs.LatencyPS {
		t.Errorf("longer link must add time of flight: %d vs %d", cl.LatencyPS, cs.LatencyPS)
	}
	// 1 km at 2e8 m/s is 5 us of flight.
	flight := cl.LatencyPS - cs.LatencyPS
	wantFlight := energy.PicosecondsFromSeconds((1000 - 0.1) / energy.SpeedOfLightMPerS)
	if math.Abs(float64(flight-wantFlight)) > 1e6 {
		t.Errorf("flight delta = %d ps, want ~%d ps", flight, wantFlight)
	}
}

func TestPhotonicLinkValidation(t *testing.T) {
	if _, err := NewPhotonicLink(-1, 1e9); err == nil {
		t.Error("negative length should fail")
	}
	if _, err := NewPhotonicLink(1, 0); err == nil {
		t.Error("zero bandwidth should fail")
	}
	l, err := NewPhotonicLink(1, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Transfer(-1); err == nil {
		t.Error("negative size should fail")
	}
}

func TestSystemCrossBoardTransfer(t *testing.T) {
	s, err := NewSystem(2, 4, 4, 10e9, 1.0, 100e9)
	if err != nil {
		t.Fatal(err)
	}
	same, err := s.Transfer(1, 0, Coord{0, 0}, 0, Coord{3, 3}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	cross, err := s.Transfer(1, 0, Coord{0, 0}, 1, Coord{3, 3}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if cross.LatencyPS <= same.LatencyPS {
		t.Errorf("cross-board %d ps should exceed same-board %d ps", cross.LatencyPS, same.LatencyPS)
	}
}

func TestSystemValidation(t *testing.T) {
	if _, err := NewSystem(0, 2, 2, 1e9, 1, 1e9); err == nil {
		t.Error("zero boards should fail")
	}
	s, err := NewSystem(2, 2, 2, 1e9, 1, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if s.Boards() != 2 {
		t.Errorf("Boards = %d, want 2", s.Boards())
	}
	if _, err := s.Board(5); err == nil {
		t.Error("out-of-range board should fail")
	}
	if _, err := s.Transfer(1, -1, Coord{}, 0, Coord{}, 10); err == nil {
		t.Error("bad src board should fail")
	}
	if _, err := s.Transfer(1, 0, Coord{}, 9, Coord{}, 10); err == nil {
		t.Error("bad dst board should fail")
	}
}
