package interconnect

import (
	"fmt"

	"cimrev/internal/energy"
)

// PhotonicLink is a board-to-board optical link. Per Section II.A, photonic
// interconnects "enable communications from centimeters to kilometers at
// the same energy per bit, varying only in the time of flight": energy is
// distance-independent while latency carries a time-of-flight term.
type PhotonicLink struct {
	lengthM   float64
	bandwidth float64 // bytes/s
}

// NewPhotonicLink returns a link of the given length in meters and
// bandwidth in bytes/s.
func NewPhotonicLink(lengthM, bandwidth float64) (*PhotonicLink, error) {
	if lengthM < 0 {
		return nil, fmt.Errorf("interconnect: negative link length %g", lengthM)
	}
	if bandwidth <= 0 {
		return nil, fmt.Errorf("interconnect: photonic bandwidth must be positive, got %g", bandwidth)
	}
	return &PhotonicLink{lengthM: lengthM, bandwidth: bandwidth}, nil
}

// Length returns the link length in meters.
func (l *PhotonicLink) Length() float64 { return l.lengthM }

// Bandwidth returns the link bandwidth in bytes/s.
func (l *PhotonicLink) Bandwidth() float64 { return l.bandwidth }

// Transfer returns the cost of moving nbytes across the link: time of
// flight plus serialization for latency; distance-independent energy.
func (l *PhotonicLink) Transfer(nbytes int) (energy.Cost, error) {
	if nbytes < 0 {
		return energy.Zero, fmt.Errorf("interconnect: negative transfer size %d", nbytes)
	}
	flight := energy.PicosecondsFromSeconds(l.lengthM / energy.SpeedOfLightMPerS)
	serialization := energy.PicosecondsFromSeconds(float64(nbytes) / l.bandwidth)
	return energy.Cost{
		LatencyPS: flight + serialization,
		EnergyPJ:  float64(nbytes) * energy.PhotonicEnergyPJPerByte,
	}, nil
}

// System connects multiple boards: each board has a mesh, and every pair of
// boards shares a photonic link (all-to-all, as in the multi-board scaling
// discussion of Section VI).
type System struct {
	boards []*Mesh
	link   *PhotonicLink
}

// NewSystem creates nboards boards of w x h meshes joined by identical
// photonic links of the given length and bandwidth.
func NewSystem(nboards, w, h int, meshBW, linkLenM, linkBW float64) (*System, error) {
	if nboards <= 0 {
		return nil, fmt.Errorf("interconnect: need at least one board, got %d", nboards)
	}
	boards := make([]*Mesh, nboards)
	for i := range boards {
		m, err := NewMesh(w, h, meshBW, nil)
		if err != nil {
			return nil, err
		}
		boards[i] = m
	}
	link, err := NewPhotonicLink(linkLenM, linkBW)
	if err != nil {
		return nil, err
	}
	return &System{boards: boards, link: link}, nil
}

// Boards returns the number of boards.
func (s *System) Boards() int { return len(s.boards) }

// Board returns board i's mesh.
func (s *System) Board(i int) (*Mesh, error) {
	if i < 0 || i >= len(s.boards) {
		return nil, fmt.Errorf("interconnect: board %d outside [0,%d)", i, len(s.boards))
	}
	return s.boards[i], nil
}

// Transfer moves nbytes from (srcBoard, src) to (dstBoard, dst): mesh hops
// on the source board to its edge, a photonic crossing when boards differ,
// then mesh hops to the destination.
func (s *System) Transfer(stream uint32, srcBoard int, src Coord, dstBoard int, dst Coord, nbytes int) (energy.Cost, error) {
	if srcBoard < 0 || srcBoard >= len(s.boards) {
		return energy.Zero, fmt.Errorf("interconnect: src board %d outside [0,%d)", srcBoard, len(s.boards))
	}
	if dstBoard < 0 || dstBoard >= len(s.boards) {
		return energy.Zero, fmt.Errorf("interconnect: dst board %d outside [0,%d)", dstBoard, len(s.boards))
	}
	if srcBoard == dstBoard {
		return s.boards[srcBoard].Transfer(stream, src, dst, nbytes, BestEffort)
	}
	edge := Coord{X: 0, Y: 0} // photonic transceivers sit at the mesh origin
	c1, err := s.boards[srcBoard].Transfer(stream, src, edge, nbytes, BestEffort)
	if err != nil {
		return energy.Zero, err
	}
	c2, err := s.link.Transfer(nbytes)
	if err != nil {
		return energy.Zero, err
	}
	c3, err := s.boards[dstBoard].Transfer(stream, edge, dst, nbytes, BestEffort)
	if err != nil {
		return energy.Zero, err
	}
	return c1.Seq(c2, c3), nil
}
