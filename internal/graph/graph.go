// Package graph is the graph-processing substrate for the paper's
// memory-centric use case (Section II.B): "graph-heavy applications
// (typical in the intelligence community) need to track information over a
// long time, the graphs are hard to reproduce after reboots/failures due to
// their sheer size". It provides a compressed sparse row graph, synthetic
// generators, PageRank and BFS kernels, and an adjacency-matrix export so
// PageRank can run as iterated MVM on the Dot Product Engine.
package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// Graph is a directed graph in CSR form.
type Graph struct {
	n       int
	offsets []int32 // len n+1
	edges   []int32 // len m
}

// NewGraph builds a graph from an adjacency list. Node IDs must be in
// [0, n).
func NewGraph(n int, adj [][]int) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("graph: need at least one node, got %d", n)
	}
	if len(adj) > n {
		return nil, fmt.Errorf("graph: adjacency for %d nodes exceeds n=%d", len(adj), n)
	}
	g := &Graph{n: n, offsets: make([]int32, n+1)}
	var m int
	for u := 0; u < n; u++ {
		g.offsets[u] = int32(m)
		if u < len(adj) {
			for _, v := range adj[u] {
				if v < 0 || v >= n {
					return nil, fmt.Errorf("graph: edge %d->%d outside [0,%d)", u, v, n)
				}
				m++
			}
		}
	}
	g.offsets[n] = int32(m)
	g.edges = make([]int32, 0, m)
	for u := 0; u < len(adj); u++ {
		for _, v := range adj[u] {
			g.edges = append(g.edges, int32(v))
		}
	}
	return g, nil
}

// Nodes returns the node count.
func (g *Graph) Nodes() int { return g.n }

// EdgesCount returns the edge count.
func (g *Graph) EdgesCount() int { return len(g.edges) }

// OutDegree returns node u's out-degree.
func (g *Graph) OutDegree(u int) int {
	return int(g.offsets[u+1] - g.offsets[u])
}

// Neighbors returns node u's out-neighbors (shared slice; do not mutate).
func (g *Graph) Neighbors(u int) []int32 {
	return g.edges[g.offsets[u]:g.offsets[u+1]]
}

// RandomPreferential generates a graph with preferential attachment
// (power-law-ish in-degrees): each new node draws outDeg targets biased
// toward already-popular nodes.
func RandomPreferential(n, outDeg int, rng *rand.Rand) (*Graph, error) {
	if n <= 1 || outDeg <= 0 {
		return nil, fmt.Errorf("graph: need n > 1 and outDeg > 0, got %d, %d", n, outDeg)
	}
	if rng == nil {
		return nil, fmt.Errorf("graph: nil rng")
	}
	adj := make([][]int, n)
	// targets accumulates endpoints for preferential sampling.
	targets := []int{0}
	for u := 1; u < n; u++ {
		seen := make(map[int]bool, outDeg)
		for d := 0; d < outDeg && d < u; d++ {
			var v int
			if rng.Float64() < 0.7 {
				v = targets[rng.Intn(len(targets))]
			} else {
				v = rng.Intn(u)
			}
			if v == u || seen[v] {
				continue
			}
			seen[v] = true
			adj[u] = append(adj[u], v)
			targets = append(targets, v)
		}
		targets = append(targets, u)
	}
	return NewGraph(n, adj)
}

// PageRank runs damped PageRank for iters iterations, returning the rank
// vector and the total flop count (for workload characterization).
func (g *Graph) PageRank(damping float64, iters int) ([]float64, float64, error) {
	if damping <= 0 || damping >= 1 {
		return nil, 0, fmt.Errorf("graph: damping %g outside (0,1)", damping)
	}
	if iters <= 0 {
		return nil, 0, fmt.Errorf("graph: iters must be positive, got %d", iters)
	}
	n := g.n
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	var flops float64
	for it := 0; it < iters; it++ {
		base := (1 - damping) / float64(n)
		for i := range next {
			next[i] = base
		}
		// Dangling mass redistributes uniformly.
		var dangling float64
		for u := 0; u < n; u++ {
			deg := g.OutDegree(u)
			if deg == 0 {
				dangling += rank[u]
				continue
			}
			share := damping * rank[u] / float64(deg)
			for _, v := range g.Neighbors(u) {
				next[v] += share
			}
			flops += float64(deg) + 2
		}
		if dangling > 0 {
			spread := damping * dangling / float64(n)
			for i := range next {
				next[i] += spread
			}
			flops += float64(n)
		}
		rank, next = next, rank
	}
	return rank, flops, nil
}

// TransitionMatrix exports the column-stochastic damped transition matrix
// T[u][v] such that rank' = T^T · rank, i.e. iterating MVM on the matrix
// reproduces PageRank — this is what maps PageRank onto crossbars.
// Dangling nodes distribute uniformly. Only practical for small graphs
// (n x n dense).
func (g *Graph) TransitionMatrix(damping float64) ([][]float64, error) {
	if damping <= 0 || damping >= 1 {
		return nil, fmt.Errorf("graph: damping %g outside (0,1)", damping)
	}
	n := g.n
	m := make([][]float64, n)
	base := (1 - damping) / float64(n)
	for u := 0; u < n; u++ {
		m[u] = make([]float64, n)
		deg := g.OutDegree(u)
		if deg == 0 {
			for v := 0; v < n; v++ {
				m[u][v] = base + damping/float64(n)
			}
			continue
		}
		for v := 0; v < n; v++ {
			m[u][v] = base
		}
		share := damping / float64(deg)
		for _, v := range g.Neighbors(u) {
			m[u][v] += share
		}
	}
	return m, nil
}

// BFS returns hop distances from src (-1 for unreachable) and the number of
// edges traversed.
func (g *Graph) BFS(src int) ([]int, int, error) {
	if src < 0 || src >= g.n {
		return nil, 0, fmt.Errorf("graph: source %d outside [0,%d)", src, g.n)
	}
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	traversed := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			traversed++
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, int(v))
			}
		}
	}
	return dist, traversed, nil
}

// L1Distance returns the L1 norm of the difference of two vectors, used by
// PageRank convergence tests.
func L1Distance(a, b []float64) float64 {
	var d float64
	for i := range a {
		d += math.Abs(a[i] - b[i])
	}
	return d
}
