package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewGraphValidation(t *testing.T) {
	if _, err := NewGraph(0, nil); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := NewGraph(2, [][]int{{5}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := NewGraph(1, [][]int{{}, {}}); err == nil {
		t.Error("adjacency longer than n accepted")
	}
}

func TestGraphBasics(t *testing.T) {
	g, err := NewGraph(3, [][]int{{1, 2}, {2}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Nodes() != 3 || g.EdgesCount() != 3 {
		t.Errorf("nodes/edges = %d/%d", g.Nodes(), g.EdgesCount())
	}
	if g.OutDegree(0) != 2 || g.OutDegree(2) != 0 {
		t.Error("degrees wrong")
	}
	nb := g.Neighbors(0)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 2 {
		t.Errorf("neighbors = %v", nb)
	}
}

func TestRandomPreferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := RandomPreferential(200, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.Nodes() != 200 {
		t.Errorf("nodes = %d", g.Nodes())
	}
	if g.EdgesCount() == 0 {
		t.Fatal("no edges generated")
	}
	// Preferential attachment concentrates in-degree: node 0 should be
	// far more popular than a late node.
	indeg := make([]int, 200)
	for u := 0; u < 200; u++ {
		for _, v := range g.Neighbors(u) {
			indeg[v]++
		}
	}
	if indeg[0] <= indeg[150] {
		t.Errorf("no preferential skew: indeg[0]=%d indeg[150]=%d", indeg[0], indeg[150])
	}
	if _, err := RandomPreferential(1, 2, rng); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := RandomPreferential(10, 0, rng); err == nil {
		t.Error("outDeg=0 accepted")
	}
	if _, err := RandomPreferential(10, 2, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestRandomPreferentialDeterministic(t *testing.T) {
	g1, err := RandomPreferential(50, 3, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := RandomPreferential(50, 3, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if g1.EdgesCount() != g2.EdgesCount() {
		t.Error("same seed produced different graphs")
	}
}

func TestPageRankProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := RandomPreferential(100, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	rank, flops, err := g.PageRank(0.85, 30)
	if err != nil {
		t.Fatal(err)
	}
	if flops <= 0 {
		t.Error("no flops counted")
	}
	var sum float64
	for _, r := range rank {
		if r < 0 {
			t.Fatal("negative rank")
		}
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("ranks sum to %g, want 1", sum)
	}
	// Node 0 (most popular under preferential attachment) outranks a
	// typical late node.
	if rank[0] <= rank[90] {
		t.Errorf("rank[0]=%g not above rank[90]=%g", rank[0], rank[90])
	}
}

func TestPageRankValidation(t *testing.T) {
	g, err := NewGraph(2, [][]int{{1}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.PageRank(0, 10); err == nil {
		t.Error("damping 0 accepted")
	}
	if _, _, err := g.PageRank(1, 10); err == nil {
		t.Error("damping 1 accepted")
	}
	if _, _, err := g.PageRank(0.85, 0); err == nil {
		t.Error("zero iterations accepted")
	}
}

func TestTransitionMatrixMatchesPageRank(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := RandomPreferential(30, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := g.PageRank(0.85, 25)
	if err != nil {
		t.Fatal(err)
	}

	m, err := g.TransitionMatrix(0.85)
	if err != nil {
		t.Fatal(err)
	}
	n := g.Nodes()
	rank := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	for it := 0; it < 25; it++ {
		next := make([]float64, n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				next[v] += m[u][v] * rank[u]
			}
		}
		rank = next
	}
	if d := L1Distance(rank, want); d > 1e-9 {
		t.Errorf("matrix iteration diverges from PageRank by %g", d)
	}
}

func TestTransitionMatrixValidation(t *testing.T) {
	g, err := NewGraph(2, [][]int{{1}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.TransitionMatrix(0); err == nil {
		t.Error("damping 0 accepted")
	}
	// Rows are stochastic (sum to 1), including the dangling node row.
	m, err := g.TransitionMatrix(0.85)
	if err != nil {
		t.Fatal(err)
	}
	for u, row := range m {
		var sum float64
		for _, v := range row {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("row %d sums to %g", u, sum)
		}
	}
}

func TestBFS(t *testing.T) {
	// 0 -> 1 -> 2, 3 isolated.
	g, err := NewGraph(4, [][]int{{1}, {2}, {}, {}})
	if err != nil {
		t.Fatal(err)
	}
	dist, traversed, err := g.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, -1}
	for i := range want {
		if dist[i] != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], want[i])
		}
	}
	if traversed != 2 {
		t.Errorf("traversed = %d, want 2", traversed)
	}
	if _, _, err := g.BFS(9); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestL1Distance(t *testing.T) {
	if d := L1Distance([]float64{1, 2}, []float64{0, 4}); d != 3 {
		t.Errorf("L1 = %g, want 3", d)
	}
}
