// Package workloads encodes the 14 application classes of the paper's
// Appendix A (Table 2), each as (a) the paper's qualitative trait row and
// (b) a quantitative kernel whose parameters feed the suitability model
// that regenerates the table's CIM column.
//
// Kernel numbers follow a uniform mapping from the qualitative levels
// (low/medium/high compute -> 1e8/1e9/1e10 FLOPs per unit of work, and so
// on), plus two class-specific judgments the paper's prose motivates:
//
//   - MVMFrac: the fraction of the work expressible as stationary-operand
//     dataflow operations (matrix-vector products, in-array bitwise ops,
//     associative lookups). High for NN/ML ("the dataflow nature of tensor
//     operations"), graph analytics (SpMV), and analytic scans; near zero
//     for pointer-chasing and control-heavy codes.
//   - StationaryFrac: the fraction of the data that lives inside CIM
//     arrays rather than streaming through the fabric.
package workloads

import "fmt"

// Level is the paper's qualitative scale.
type Level int

const (
	// Low maps to the bottom of a trait's range.
	Low Level = iota + 1
	// Medium is the middle of the range.
	Medium
	// High is the top of the range.
	High
)

// String names the level as the paper prints it.
func (l Level) String() string {
	switch l {
	case Low:
		return "low"
	case Medium:
		return "medium"
	case High:
		return "high"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// Class enumerates the Table 2 application classes.
type Class int

const (
	// MachineLearning is classical ML training/scoring.
	MachineLearning Class = iota + 1
	// NeuralNetworks is deep network inference.
	NeuralNetworks
	// GraphProblems is large-graph analytics (FB, intelligence).
	GraphProblems
	// BayesianInference is probabilistic inference.
	BayesianInference
	// MarkovChain is Markov-chain simulation.
	MarkovChain
	// KVS is a key-value persistency layer.
	KVS
	// DBAnalytics is analytical database scans.
	DBAnalytics
	// DBTransactions is transactional database processing.
	DBTransactions
	// Search is index construction and query.
	Search
	// Optimization is resource-allocation optimization.
	Optimization
	// Scientific is general scientific computing.
	Scientific
	// FEM is finite element modeling.
	FEM
	// Collaborative is mail/chat-style collaborative software.
	Collaborative
	// SignalProcessing is image/signal pipelines.
	SignalProcessing
)

// Classes lists every class in Table 2 row order.
func Classes() []Class {
	return []Class{
		MachineLearning, NeuralNetworks, GraphProblems, BayesianInference,
		MarkovChain, KVS, DBAnalytics, DBTransactions, Search,
		Optimization, Scientific, FEM, Collaborative, SignalProcessing,
	}
}

// String names the class as Table 2 does.
func (c Class) String() string {
	switch c {
	case MachineLearning:
		return "Machine learning"
	case NeuralNetworks:
		return "Neural Networks"
	case GraphProblems:
		return "Graph problems"
	case BayesianInference:
		return "Bayesian inference"
	case MarkovChain:
		return "Markov chain"
	case KVS:
		return "KVSs (persistency)"
	case DBAnalytics:
		return "Data Bases (analytics)"
	case DBTransactions:
		return "Data Bases (transactions)"
	case Search:
		return "Search (indexing)"
	case Optimization:
		return "Optimization problem"
	case Scientific:
		return "Scientific Computing"
	case FEM:
		return "Finite Element Modelling"
	case Collaborative:
		return "Collaborative (mail, chat)"
	case SignalProcessing:
		return "Signal (image) processing"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Traits is the paper's qualitative Table 2 row.
type Traits struct {
	Compute       Level
	DataBandwidth Level
	DataSize      Level
	OpIntensity   Level
	Communication Level
	Parallelism   Level
	// PaperCIM is the paper's verdict — the value our measured
	// reproduction must match.
	PaperCIM Level
}

// Traits returns the paper's Table 2 row for the class. Ranged cells
// ("low to med.", "low to high") round to Medium.
func (c Class) Traits() Traits {
	switch c {
	case MachineLearning:
		return Traits{High, High, High, High, Low, High, High}
	case NeuralNetworks:
		return Traits{High, High, High, High, Low, High, High}
	case GraphProblems:
		return Traits{Low, Medium, High, High, High, High, High}
	case BayesianInference:
		return Traits{High, Low, Low, High, High, Medium, Low}
	case MarkovChain:
		return Traits{High, Low, Low, Low, High, High, Low}
	case KVS:
		return Traits{Low, High, High, Low, Medium, High, Medium}
	case DBAnalytics:
		return Traits{Low, High, High, Low, Medium, High, High}
	case DBTransactions:
		return Traits{Medium, High, Medium, High, High, Medium, Medium}
	case Search:
		return Traits{High, High, High, High, High, High, Low}
	case Optimization:
		return Traits{High, Low, Low, High, High, Low, Low}
	case Scientific:
		return Traits{High, Medium, Medium, Medium, High, High, Low}
	case FEM:
		return Traits{High, Low, Medium, Medium, High, High, Medium}
	case Collaborative:
		return Traits{Low, High, Medium, Low, High, Low, Low}
	case SignalProcessing:
		return Traits{High, High, High, Low, High, Medium, Low}
	default:
		return Traits{}
	}
}

// Kernel is the quantitative characterization of one unit of work.
type Kernel struct {
	Class Class
	// Flops is total arithmetic.
	Flops float64
	// DataBytes is the data touched.
	DataBytes float64
	// Rounds is the count of serializing dataflow synchronizations
	// (iterative dependences that cross unit boundaries).
	Rounds float64
	// MVMFrac is the fraction of Flops that maps to in-memory
	// stationary-operand compute.
	MVMFrac float64
	// StationaryFrac is the fraction of DataBytes resident in CIM arrays.
	StationaryFrac float64
	// Parallelism is the exploitable parallel fraction in (0, 1].
	Parallelism float64
}

// Validate reports whether the kernel is well-formed.
func (k Kernel) Validate() error {
	switch {
	case k.Flops <= 0 || k.DataBytes < 0 || k.Rounds < 0:
		return fmt.Errorf("workloads: non-positive kernel magnitudes")
	case k.MVMFrac < 0 || k.MVMFrac > 1:
		return fmt.Errorf("workloads: MVMFrac %g outside [0,1]", k.MVMFrac)
	case k.StationaryFrac < 0 || k.StationaryFrac > 1:
		return fmt.Errorf("workloads: StationaryFrac %g outside [0,1]", k.StationaryFrac)
	case k.Parallelism <= 0 || k.Parallelism > 1:
		return fmt.Errorf("workloads: Parallelism %g outside (0,1]", k.Parallelism)
	}
	return nil
}

// OperationalIntensity returns FLOPs per byte.
func (k Kernel) OperationalIntensity() float64 {
	if k.DataBytes == 0 {
		return 0
	}
	return k.Flops / k.DataBytes
}

// flopsFor maps a compute level to FLOPs per unit of work.
func flopsFor(l Level) float64 {
	switch l {
	case Low:
		return 1e8
	case Medium:
		return 5e8
	default:
		return 1e10
	}
}

// bytesFor maps a data-size level to bytes per unit of work.
func bytesFor(l Level) float64 {
	switch l {
	case Low:
		return 1e8
	case Medium:
		return 1e9
	default:
		return 1e10
	}
}

// Kernel returns the class's quantitative kernel scaled by scale (1.0 is
// the reference size).
func (c Class) Kernel(scale float64) (Kernel, error) {
	if scale <= 0 {
		return Kernel{}, fmt.Errorf("workloads: scale must be positive, got %g", scale)
	}
	tr := c.Traits()
	k := Kernel{
		Class:     c,
		Flops:     flopsFor(tr.Compute) * scale,
		DataBytes: bytesFor(tr.DataSize) * scale,
	}
	switch c {
	case MachineLearning:
		k.Rounds, k.MVMFrac, k.StationaryFrac, k.Parallelism = 1e3, 0.90, 0.90, 0.95
	case NeuralNetworks:
		k.Rounds, k.MVMFrac, k.StationaryFrac, k.Parallelism = 1e3, 0.95, 0.95, 0.95
	case GraphProblems:
		// PageRank-style: SpMV maps to crossbars; ~20 iterations of
		// per-tile exchange, not per-edge synchronization.
		k.Flops = 1e9 * scale
		k.Rounds, k.MVMFrac, k.StationaryFrac, k.Parallelism = 1e4, 0.80, 0.80, 0.90
	case BayesianInference:
		k.Rounds, k.MVMFrac, k.StationaryFrac, k.Parallelism = 1e6, 0.20, 0.30, 0.70
	case MarkovChain:
		// Long sequential chains: every step is a cross-unit dependence.
		k.Rounds, k.MVMFrac, k.StationaryFrac, k.Parallelism = 1e6, 0.10, 0.20, 0.90
	case KVS:
		k.DataBytes = 1e9 * scale
		k.Rounds, k.MVMFrac, k.StationaryFrac, k.Parallelism = 1e5, 0.0, 0.50, 0.90
	case DBAnalytics:
		// Scans and aggregations lower to in-array bitwise/associative ops.
		k.Flops = 1e9 * scale
		k.Rounds, k.MVMFrac, k.StationaryFrac, k.Parallelism = 1e4, 0.70, 0.85, 0.90
	case DBTransactions:
		k.Rounds, k.MVMFrac, k.StationaryFrac, k.Parallelism = 5e4, 0.10, 0.70, 0.70
	case Search:
		// Index construction is sort/pointer heavy; little maps in-array.
		k.Rounds, k.MVMFrac, k.StationaryFrac, k.Parallelism = 1e5, 0.20, 0.30, 0.95
	case Optimization:
		k.Rounds, k.MVMFrac, k.StationaryFrac, k.Parallelism = 1e6, 0.20, 0.20, 0.30
	case Scientific:
		k.Rounds, k.MVMFrac, k.StationaryFrac, k.Parallelism = 1e5, 0.30, 0.30, 0.90
	case FEM:
		// Sparse solves map partially; assembly does not.
		k.Flops = 5e9 * scale
		k.Rounds, k.MVMFrac, k.StationaryFrac, k.Parallelism = 1e4, 0.85, 0.60, 0.90
	case Collaborative:
		k.Rounds, k.MVMFrac, k.StationaryFrac, k.Parallelism = 1e6, 0.0, 0.40, 0.30
	case SignalProcessing:
		// Streaming data is transient: nothing is stationary.
		k.Rounds, k.MVMFrac, k.StationaryFrac, k.Parallelism = 1e5, 0.50, 0.10, 0.70
	default:
		return Kernel{}, fmt.Errorf("workloads: unknown class %d", c)
	}
	k.Rounds *= scale
	return k, k.Validate()
}
