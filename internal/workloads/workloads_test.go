package workloads

import (
	"strings"
	"testing"
)

func TestClassesComplete(t *testing.T) {
	cs := Classes()
	if len(cs) != 14 {
		t.Fatalf("Classes = %d, want 14 (Table 2 rows)", len(cs))
	}
	seen := make(map[Class]bool)
	for _, c := range cs {
		if seen[c] {
			t.Errorf("duplicate class %v", c)
		}
		seen[c] = true
	}
}

func TestClassStringsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, c := range Classes() {
		s := c.String()
		if s == "" || strings.HasPrefix(s, "class(") {
			t.Errorf("class %d has no name", c)
		}
		if seen[s] {
			t.Errorf("duplicate class name %q", s)
		}
		seen[s] = true
	}
	if !strings.HasPrefix(Class(99).String(), "class(") {
		t.Error("unknown class string")
	}
}

func TestTraitsPopulated(t *testing.T) {
	for _, c := range Classes() {
		tr := c.Traits()
		for i, l := range []Level{tr.Compute, tr.DataBandwidth, tr.DataSize,
			tr.OpIntensity, tr.Communication, tr.Parallelism, tr.PaperCIM} {
			if l < Low || l > High {
				t.Errorf("%v trait %d = %v out of range", c, i, l)
			}
		}
	}
	if got := (Class(99)).Traits(); got != (Traits{}) {
		t.Error("unknown class traits not empty")
	}
}

func TestPaperCIMColumn(t *testing.T) {
	// The exact verdicts of Table 2's CIM column.
	want := map[Class]Level{
		MachineLearning:   High,
		NeuralNetworks:    High,
		GraphProblems:     High,
		BayesianInference: Low,
		MarkovChain:       Low,
		KVS:               Medium,
		DBAnalytics:       High,
		DBTransactions:    Medium,
		Search:            Low,
		Optimization:      Low,
		Scientific:        Low,
		FEM:               Medium,
		Collaborative:     Low,
		SignalProcessing:  Low,
	}
	for c, w := range want {
		if got := c.Traits().PaperCIM; got != w {
			t.Errorf("%v paper verdict = %v, want %v", c, got, w)
		}
	}
}

func TestKernelsValid(t *testing.T) {
	for _, c := range Classes() {
		k, err := c.Kernel(1)
		if err != nil {
			t.Errorf("%v: %v", c, err)
			continue
		}
		if err := k.Validate(); err != nil {
			t.Errorf("%v kernel invalid: %v", c, err)
		}
		if k.Class != c {
			t.Errorf("%v kernel class mismatch", c)
		}
	}
}

func TestKernelScalesLinearly(t *testing.T) {
	for _, c := range Classes() {
		k1, err := c.Kernel(1)
		if err != nil {
			t.Fatal(err)
		}
		k3, err := c.Kernel(3)
		if err != nil {
			t.Fatal(err)
		}
		if k3.Flops != 3*k1.Flops {
			t.Errorf("%v flops do not scale: %g vs %g", c, k3.Flops, k1.Flops)
		}
		if k3.DataBytes != 3*k1.DataBytes {
			t.Errorf("%v bytes do not scale: %g vs %g", c, k3.DataBytes, k1.DataBytes)
		}
		if k3.Rounds != 3*k1.Rounds {
			t.Errorf("%v rounds do not scale", c)
		}
		// Fractions are scale-free.
		if k3.MVMFrac != k1.MVMFrac || k3.Parallelism != k1.Parallelism {
			t.Errorf("%v fractions changed with scale", c)
		}
	}
}

func TestKernelErrors(t *testing.T) {
	if _, err := MachineLearning.Kernel(0); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := Class(99).Kernel(1); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestKernelValidateCatchesBadFields(t *testing.T) {
	good, err := KVS.Kernel(1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []func(*Kernel){
		func(k *Kernel) { k.Flops = 0 },
		func(k *Kernel) { k.DataBytes = -1 },
		func(k *Kernel) { k.Rounds = -1 },
		func(k *Kernel) { k.MVMFrac = 1.5 },
		func(k *Kernel) { k.StationaryFrac = -0.1 },
		func(k *Kernel) { k.Parallelism = 0 },
		func(k *Kernel) { k.Parallelism = 1.2 },
	}
	for i, mutate := range cases {
		k := good
		mutate(&k)
		if err := k.Validate(); err == nil {
			t.Errorf("case %d: invalid kernel accepted", i)
		}
	}
}

func TestOperationalIntensity(t *testing.T) {
	k := Kernel{Flops: 100, DataBytes: 50}
	if k.OperationalIntensity() != 2 {
		t.Error("OI wrong")
	}
	k.DataBytes = 0
	if k.OperationalIntensity() != 0 {
		t.Error("zero-byte OI should be 0")
	}
}

func TestHighCIMClassesShareDataflowShape(t *testing.T) {
	// Classes the paper rates high must have substantial in-memory
	// mappability; low classes must not.
	for _, c := range Classes() {
		k, err := c.Kernel(1)
		if err != nil {
			t.Fatal(err)
		}
		switch c.Traits().PaperCIM {
		case High:
			if k.MVMFrac < 0.5 {
				t.Errorf("%v rated high but MVMFrac %g < 0.5", c, k.MVMFrac)
			}
		case Low:
			if k.MVMFrac > 0.6 {
				t.Errorf("%v rated low but MVMFrac %g > 0.6", c, k.MVMFrac)
			}
		}
	}
}

func TestLevelString(t *testing.T) {
	if Low.String() != "low" || Medium.String() != "medium" || High.String() != "high" {
		t.Error("level strings wrong")
	}
	if !strings.HasPrefix(Level(9).String(), "level(") {
		t.Error("unknown level string")
	}
}
