// Engine health scanning and in-place repair.
//
// Section V.A of the paper claims CIM fabrics survive device failure
// "through redundancy of information and components"; this file is where
// the Dot Product Engine exposes that story as an API. HealthCheck reads
// the blast-radius record every crossbar kept from its latest
// program-and-verify pass (stuck cells found, retry pulses charged,
// columns remapped to spares, columns lost); Repair reprograms the
// unhealthy stages in place between batches, re-rolling transient write
// failures and re-running the self-test + spare remap — at full,
// ledger-charged write cost. The serving layer builds its circuit breaker
// on top (internal/serve, docs/FAULTS.md).
package dpe

import (
	"fmt"

	"cimrev/internal/crossbar"
	"cimrev/internal/energy"
	"cimrev/internal/faultinject"
	"cimrev/internal/obs"
	"cimrev/internal/parallel"
)

// stageTile returns the physical tile for stage i, reusing the array the
// engine already owns at that position: reloading a network does not
// fabricate fresh crossbars, so wear counts and fault program epochs
// carry across Loads (a retried Load re-rolls transient write failures on
// a later epoch instead of replaying the first attempt's draws). A tile
// is allocated only when position i has never held one.
func (e *Engine) stageTile(i int) (*crossbar.Tile, error) {
	if i < len(e.stages) && e.stages[i].tile != nil {
		return e.stages[i].tile, nil
	}
	return e.newTile(i)
}

// newTile allocates the crossbar tile for stage i, installing the
// engine's device-fault model keyed to that stage: stage i derives fault
// child i of the engine's root, so which cells are stuck is a pure
// function of (fault seed, stage, block, position) — never of load order
// or pool width.
func (e *Engine) newTile(i int) (*crossbar.Tile, error) {
	tile, err := crossbar.NewTile(e.cfg.Crossbar)
	if err != nil {
		return nil, err
	}
	if e.cfg.Faults.Enabled() {
		if err := tile.SetFaults(e.cfg.Faults, e.faultSrc.Derive(uint64(i))); err != nil {
			return nil, err
		}
	}
	return tile, nil
}

// StageHealth is the fault record of one crossbar-bearing stage.
type StageHealth struct {
	// Stage is the layer index within the network.
	Stage int
	// Layer is the layer's name.
	Layer string
	// Report is the stage tile's aggregated fault report.
	Report faultinject.Report
}

// Health is an engine-wide fault scan: one entry per crossbar-bearing
// stage plus the fold of all of them.
type Health struct {
	Stages []StageHealth
	Total  faultinject.Report
}

// Healthy reports whether every logical column in every stage holds
// verified data. Drift cells do not unhealth an engine — they verify
// clean and degrade slowly — but they are visible in the report so
// callers can schedule preventive reprogramming.
func (h Health) Healthy() bool { return h.Total.Healthy() }

// String formats the engine-wide fold.
func (h Health) String() string {
	return fmt.Sprintf("stages=%d %s", len(h.Stages), h.Total.String())
}

// HealthCheck scans the engine's crossbars and returns their fault state.
// The underlying self-test ran (and was charged) during the last
// program-and-verify pass, so the scan itself is free and safe to run
// between batches; it must not race a concurrent Load/Reprogram/Repair.
// An engine without a loaded network, or without fault injection, reports
// healthy with no stages.
func (e *Engine) HealthCheck() Health {
	var h Health
	for i := range e.stages {
		s := &e.stages[i]
		if s.tile == nil {
			continue
		}
		sh := StageHealth{Stage: i, Layer: s.layer.Name(), Report: s.tile.FaultReport()}
		h.Stages = append(h.Stages, sh)
		h.Total.Add(sh.Report)
	}
	return h
}

// Repair reprograms every stage whose fault report shows lost columns,
// re-running program-and-verify, the self-test scan, and spare remapping
// on the same physical arrays. Transient write failures re-roll on the
// new program epoch, so losses they caused usually clear; stuck cells are
// position-pinned, so a stage lost to spare exhaustion stays lost and the
// returned health says so — degradation is reported, never silent.
//
// The cost is real: every pulse of every retried cell lands in the
// returned ledger entry (stages repair in parallel, so latency is the max
// stage cost and energy sums — the same fold as Load). Repairing a
// healthy engine returns zero cost. Repair must not race inference.
func (e *Engine) Repair() (energy.Cost, Health, error) {
	return e.RepairCtx(obs.Ctx{})
}

// RepairCtx is Repair with tracing: a "dpe.repair" span (annotated with
// the number of stages reprogrammed) whose children are the per-stage
// tile.program spans.
func (e *Engine) RepairCtx(pc obs.Ctx) (energy.Cost, Health, error) {
	sp := pc.Child("dpe.repair")
	cost, h, err := e.repair(sp)
	sp.End(cost)
	return cost, h, err
}

func (e *Engine) repair(sp obs.Ctx) (energy.Cost, Health, error) {
	if e.net == nil {
		return energy.Zero, Health{}, fmt.Errorf("dpe: Repair before Load")
	}
	bad := make([]int, 0, len(e.stages))
	for i := range e.stages {
		s := &e.stages[i]
		if s.tile != nil && !s.tile.FaultReport().Healthy() {
			bad = append(bad, i)
		}
	}
	if sp.Active() {
		sp.Annotate("stages", float64(len(bad)))
	}
	if len(bad) == 0 {
		return energy.Zero, e.HealthCheck(), nil
	}
	costs := make([]energy.Cost, len(bad))
	err := parallel.ForErr(len(bad), func(k int) error {
		s := &e.stages[bad[k]]
		switch {
		case s.dense != nil:
			c, err := s.tile.ProgramCtx(sp, s.dense.WeightMatrix())
			if err != nil {
				return fmt.Errorf("dpe: repair stage %d (%s): %w", bad[k], s.layer.Name(), err)
			}
			costs[k] = c
		case s.conv != nil:
			c, err := s.tile.ProgramCtx(sp, s.conv.Im2ColMatrix())
			if err != nil {
				return fmt.Errorf("dpe: repair stage %d (%s): %w", bad[k], s.layer.Name(), err)
			}
			c.EnergyPJ *= float64(e.cfg.ConvReplicas)
			costs[k] = c
		}
		return nil
	})
	if err != nil {
		return energy.Zero, Health{}, err
	}
	total := energy.Zero
	for _, c := range costs {
		total = total.Par(c)
	}
	return total, e.HealthCheck(), nil
}
