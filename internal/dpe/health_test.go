package dpe

import (
	"math/rand"
	"reflect"
	"testing"

	"cimrev/internal/faultinject"
	"cimrev/internal/nn"
	"cimrev/internal/parallel"
)

// healthTestConfig shrinks the arrays so a small MLP spans multiple
// columns per tile and stuck faults land at test-friendly rates.
func healthTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Crossbar.Rows = 32
	cfg.Crossbar.Cols = 32
	return cfg
}

func healthTestNet(t *testing.T, seed int64) *nn.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net, err := nn.NewMLP("health-mlp", []int{24, 32, 8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestHealthCheckNoFaults: a fault-free engine scans healthy with stage
// entries whose reports are all zero.
func TestHealthCheckNoFaults(t *testing.T) {
	eng, err := New(healthTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if h := eng.HealthCheck(); !h.Healthy() || len(h.Stages) != 0 {
		t.Fatalf("unloaded engine health: %+v", h)
	}
	if _, err := eng.Load(healthTestNet(t, 1)); err != nil {
		t.Fatal(err)
	}
	h := eng.HealthCheck()
	if !h.Healthy() {
		t.Fatalf("fault-free engine unhealthy: %s", h)
	}
	if len(h.Stages) == 0 {
		t.Fatal("no crossbar-bearing stages reported")
	}
	if h.Total != (faultinject.Report{}) {
		t.Fatalf("fault-free engine has nonzero report: %+v", h.Total)
	}
	cost, h2, err := eng.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if cost.LatencyPS != 0 || cost.EnergyPJ != 0 {
		t.Fatalf("repairing a healthy engine charged %v", cost)
	}
	if !h2.Healthy() {
		t.Fatalf("post-repair health: %s", h2)
	}
}

// TestRepairedEngineMatchesFaultFree pins the acceptance criterion: at a
// nonzero stuck-cell rate within the spare budget, the repaired engine's
// inference outputs are bit-identical to the fault-free engine's.
func TestRepairedEngineMatchesFaultFree(t *testing.T) {
	net := healthTestNet(t, 2)
	in := make([]float64, net.InSize())
	rng := rand.New(rand.NewSource(3))
	for i := range in {
		in[i] = rng.Float64()*2 - 1
	}

	ref, err := New(healthTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Load(net); err != nil {
		t.Fatal(err)
	}
	refOut, refCost, err := ref.Infer(in)
	if err != nil {
		t.Fatal(err)
	}

	cfg := healthTestConfig()
	cfg.Crossbar.SpareCols = 24
	cfg.Faults = faultinject.Model{StuckLowRate: 0.001, StuckHighRate: 0.001, Seed: 7}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Load(net); err != nil {
		t.Fatal(err)
	}
	h := eng.HealthCheck()
	if h.Total.StuckCells == 0 {
		t.Fatalf("seed found no stuck cells: %s", h)
	}
	if !h.Healthy() {
		t.Fatalf("spare budget 24 exhausted: %s", h)
	}
	out, cost, err := eng.Infer(in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, refOut) {
		t.Fatal("repaired engine output differs from fault-free engine")
	}
	if cost != refCost {
		t.Fatalf("inference cost changed under repair: %v != %v", cost, refCost)
	}
	// Programming, by contrast, must have cost more: retries + remaps.
	if eng.ProgramCost().EnergyPJ <= ref.ProgramCost().EnergyPJ {
		t.Fatalf("faulty load energy %g not above clean %g",
			eng.ProgramCost().EnergyPJ, ref.ProgramCost().EnergyPJ)
	}
}

// TestSpareExhaustionReported pins the degradation path: past the spare
// budget the engine reports lost columns and HealthCheck flags unhealthy.
func TestSpareExhaustionReported(t *testing.T) {
	net := healthTestNet(t, 4)
	cfg := healthTestConfig()
	cfg.Crossbar.SpareCols = 0
	cfg.Faults = faultinject.Model{StuckLowRate: 0.03, StuckHighRate: 0.03, Seed: 11}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Load(net); err != nil {
		t.Fatal(err)
	}
	h := eng.HealthCheck()
	if h.Healthy() || h.Total.LostCols == 0 {
		t.Fatalf("expected lost columns at 6%% stuck with no spares: %s", h)
	}
	// Stuck-cell losses are position-pinned: Repair re-runs the write
	// loop (charging real cost) but cannot conjure spare columns.
	cost, h2, err := eng.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if cost.EnergyPJ == 0 {
		t.Fatal("repair attempt charged nothing")
	}
	if h2.Healthy() {
		t.Fatalf("stuck-cell losses cannot repair without spares: %s", h2)
	}
}

// TestRepairClearsTransientLosses: when losses come from transient write
// failures, a Repair pass re-rolls the pulse draws on a new program epoch
// and recovers the columns.
func TestRepairClearsTransientLosses(t *testing.T) {
	net := healthTestNet(t, 5)
	cfg := healthTestConfig()
	cfg.Crossbar.SpareCols = 0
	// Extreme per-pulse failure rate: some cells exhaust all 63 pulses.
	cfg.Faults = faultinject.Model{WriteFailRate: 0.9, Seed: 4}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Load(net); err != nil {
		t.Fatal(err)
	}
	h := eng.HealthCheck()
	if h.Healthy() {
		t.Skipf("seed 4 produced no transient losses (report %s); pick a harsher seed", h)
	}
	for attempt := 0; attempt < 8 && !h.Healthy(); attempt++ {
		if _, h, err = eng.Repair(); err != nil {
			t.Fatal(err)
		}
	}
	if !h.Healthy() {
		t.Fatalf("transient losses did not clear after repairs: %s", h)
	}

	// The recovered engine now computes exactly what a fault-free one does.
	ref, err := New(healthTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Load(net); err != nil {
		t.Fatal(err)
	}
	in := make([]float64, net.InSize())
	rng := rand.New(rand.NewSource(6))
	for i := range in {
		in[i] = rng.Float64()*2 - 1
	}
	refOut, _, err := ref.Infer(in)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := eng.Infer(in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, refOut) {
		t.Fatal("recovered engine output differs from fault-free engine")
	}
}

// TestFaultHealthParallelEquivalence pins engine-level fault determinism:
// load + health + outputs identical at pool widths 1/4/16.
func TestFaultHealthParallelEquivalence(t *testing.T) {
	defer parallel.SetWidth(parallel.Width())
	net := healthTestNet(t, 8)
	in := make([]float64, net.InSize())
	rng := rand.New(rand.NewSource(9))
	for i := range in {
		in[i] = rng.Float64()*2 - 1
	}

	type snap struct {
		out    []float64
		total  faultinject.Report
		energy float64
	}
	runAt := func(width int) snap {
		parallel.SetWidth(width)
		cfg := healthTestConfig()
		cfg.Crossbar.SpareCols = 8
		cfg.Faults = faultinject.Model{
			StuckLowRate: 0.01, StuckHighRate: 0.01,
			WriteFailRate: 0.2, DriftRate: 0.05, DriftMax: 0.1,
			Seed: 21,
		}
		eng, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		loadCost, err := eng.Load(net)
		if err != nil {
			t.Fatal(err)
		}
		out, _, err := eng.Infer(in)
		if err != nil {
			t.Fatal(err)
		}
		return snap{out, eng.HealthCheck().Total, loadCost.EnergyPJ}
	}

	ref := runAt(1)
	if ref.total.StuckCells == 0 {
		t.Fatalf("seed found no faults: %+v", ref.total)
	}
	for _, width := range []int{4, 16} {
		got := runAt(width)
		if !reflect.DeepEqual(got.out, ref.out) {
			t.Fatalf("width %d: outputs diverge from serial", width)
		}
		if got.total != ref.total {
			t.Fatalf("width %d: report %+v != serial %+v", width, got.total, ref.total)
		}
		if got.energy != ref.energy {
			t.Fatalf("width %d: load energy %g != serial %g", width, got.energy, ref.energy)
		}
	}
}
