// Package dpe implements the Dot Product Engine, the paper's Section VI
// system: "we have implemented [a] static data flow CIM model which enables
// us to program and reconfigure the CIM for classes of neural networks",
// the follow-on to ISAAC [49] "extended to be more programmable".
//
// An Engine holds a neural network entirely in crossbar arrays: dense
// layers map to tiles of memristive crossbars, convolutions are lowered via
// im2col and streamed patch-by-patch through replicated filter crossbars,
// and activations run on digital micro-units. Because the weights never
// move, each inference costs only input/output streaming plus in-place
// analog reads — the root of the latency, bandwidth, and power advantages
// Section VI reports and this package's experiments reproduce.
//
// The simulator exploits the same spatial parallelism the hardware does:
// Load and Reprogram fan independent layers across the internal/parallel
// worker pool, InferBatch fans independent batch items, and Cluster fans
// independent boards — all with deterministic index-ordered reductions, so
// outputs and energy/latency totals are bit-identical to serial execution
// at any pool width (see docs/PARALLELISM.md). Analog read noise comes
// from a counter-based internal/noise tree keyed by (seed, inference
// sequence, stage, patch, block, position), so noisy batches fan out
// exactly like noise-free ones and still reproduce bit-identically;
// per-engine counters use atomics and are safe to read concurrently.
package dpe

import (
	"fmt"
	"sync/atomic"

	"cimrev/internal/crossbar"
	"cimrev/internal/energy"
	"cimrev/internal/faultinject"
	"cimrev/internal/nn"
	"cimrev/internal/noise"
	"cimrev/internal/obs"
	"cimrev/internal/parallel"
)

// Config configures an Engine.
type Config struct {
	// Crossbar configures the underlying arrays.
	Crossbar crossbar.Config
	// ConvReplicas is how many copies of each convolution's filter
	// crossbar exist; patches stream through replicas in parallel.
	ConvReplicas int
	// Seed drives analog noise.
	Seed int64
	// Faults configures device-fault injection (stuck cells, endurance
	// drift, transient write failures) across every crossbar in the
	// engine. The zero model disables injection entirely; see
	// internal/faultinject and docs/FAULTS.md. Stage i derives fault
	// child i of the model's root source, and tiles derive one
	// grandchild per block, so fault positions are stable at any
	// worker-pool width.
	Faults faultinject.Model
}

// DefaultConfig returns ISAAC-scale arrays in functional-simulation mode
// with 4-way conv replication.
func DefaultConfig() Config {
	xb := crossbar.DefaultConfig()
	xb.Functional = true
	return Config{Crossbar: xb, ConvReplicas: 4, Seed: 1}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.ConvReplicas <= 0 {
		return fmt.Errorf("dpe: ConvReplicas must be positive, got %d", c.ConvReplicas)
	}
	if err := c.Faults.Validate(); err != nil {
		return fmt.Errorf("dpe: %w", err)
	}
	return c.Crossbar.Validate()
}

// stage is one loaded layer.
type stage struct {
	layer nn.Layer
	// tile holds weights for Dense and Conv2D stages.
	tile *crossbar.Tile
	// conv is set for Conv2D stages.
	conv *nn.Conv2D
	// dense is set for Dense stages.
	dense *nn.Dense
}

// Engine is a programmed Dot Product Engine.
type Engine struct {
	cfg Config
	src noise.Source
	// faultSrc is the root of the engine's fault-source tree (valid only
	// when cfg.Faults is enabled); stage i's tile derives child i.
	faultSrc noise.Source
	net      *nn.Network
	stages   []stage

	programCost energy.Cost
	// inferences counts completed inferences. It is atomic because
	// InferBatch retires batch items from multiple pool workers, and
	// Inferences() may be read while a batch is in flight.
	inferences atomic.Int64
	// seq numbers inferences for noise derivation: inference k (counted
	// since Load) draws from src.Derive(k). Infer claims one number;
	// InferBatch claims a contiguous run and assigns item i the number
	// seq0+i, so a batch's noise is identical to the same inputs run
	// through Infer one at a time — and identical at any pool width.
	seq atomic.Uint64
}

// New returns an empty engine.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, src: noise.NewSource(cfg.Seed)}
	if cfg.Faults.Enabled() {
		e.faultSrc = cfg.Faults.Root()
	}
	return e, nil
}

// Network returns the loaded network (nil before Load).
func (e *Engine) Network() *nn.Network { return e.net }

// ProgramCost returns the cost of the most recent Load — dominated by the
// slow memristor writes (Section VI's asymmetry).
func (e *Engine) ProgramCost() energy.Cost { return e.programCost }

// Inferences returns how many inferences have run since Load. It is safe
// to call concurrently with InferBatch.
func (e *Engine) Inferences() int64 { return e.inferences.Load() }

// Wear returns the engine's lifetime cell-write count: the sum of every
// stage tile's Writes(), retry pulses and retired-array history included.
// Inference never writes, so wear moves only on Load/Reprogram/Repair; the
// fleet router's wear-aware policy reads it between batches. Wear must not
// race a concurrent Load/Reprogram/Repair (serve.ShadowPair.Wear holds the
// live engine's read gate for exactly this reason).
func (e *Engine) Wear() int64 {
	var w int64
	for i := range e.stages {
		if t := e.stages[i].tile; t != nil {
			w += t.Writes()
		}
	}
	return w
}

// CrossbarCount returns the number of physical crossbar arrays in use.
func (e *Engine) CrossbarCount() int {
	var n int
	for _, s := range e.stages {
		if s.tile != nil {
			mult := 1
			if s.conv != nil {
				mult = e.cfg.ConvReplicas
			}
			n += s.tile.CrossbarCount() * mult
		}
	}
	return n
}

// WeightBytes returns the bytes of weights held stationary in the arrays.
func (e *Engine) WeightBytes() float64 {
	if e.net == nil {
		return 0
	}
	return float64(e.net.Params()) * float64(e.cfg.Crossbar.WeightBits) / 8
}

// Load programs the network into crossbar hardware, returning the
// programming cost. Layers program in parallel across their own arrays
// (latency is the max stage cost; energy sums), and the simulator fans
// the independent layers across the worker pool; per-layer costs fold in
// layer order so the total is identical at any pool width.
func (e *Engine) Load(net *nn.Network) (energy.Cost, error) {
	return e.LoadCtx(obs.Ctx{}, net)
}

// LoadCtx is Load with tracing: it opens a "dpe.load" span whose children
// are the per-layer tile.program spans (which the worker pool may retire
// in any order — attribution is by parent ID, not position).
func (e *Engine) LoadCtx(pc obs.Ctx, net *nn.Network) (energy.Cost, error) {
	sp := pc.Child("dpe.load")
	cost, err := e.load(sp, net)
	if sp.Active() {
		sp.Annotate("layers", float64(len(e.stages)))
	}
	sp.End(cost)
	return cost, err
}

func (e *Engine) load(sp obs.Ctx, net *nn.Network) (energy.Cost, error) {
	if net == nil || len(net.Layers) == 0 {
		return energy.Zero, fmt.Errorf("dpe: empty network")
	}
	stages := make([]stage, len(net.Layers))
	costs := make([]energy.Cost, len(net.Layers))
	err := parallel.ForErr(len(net.Layers), func(i int) error {
		layer := net.Layers[i]
		s := stage{layer: layer}
		switch l := layer.(type) {
		case *nn.Dense:
			tile, err := e.stageTile(i)
			if err != nil {
				return err
			}
			cost, err := tile.ProgramCtx(sp, l.WeightMatrix())
			if err != nil {
				return fmt.Errorf("dpe: program layer %d (%s): %w", i, l.Name(), err)
			}
			costs[i] = cost
			s.tile, s.dense = tile, l
		case *nn.Conv2D:
			tile, err := e.stageTile(i)
			if err != nil {
				return err
			}
			cost, err := tile.ProgramCtx(sp, l.Im2ColMatrix())
			if err != nil {
				return fmt.Errorf("dpe: program layer %d (%s): %w", i, l.Name(), err)
			}
			// Replicas program in parallel but all cells cost energy.
			cost.EnergyPJ *= float64(e.cfg.ConvReplicas)
			costs[i] = cost
			s.tile, s.conv = tile, l
		case *nn.ActivationLayer, *nn.MaxPool2D:
			// Digital stages need no programming.
		default:
			return fmt.Errorf("dpe: unsupported layer %d (%s)", i, layer.Name())
		}
		stages[i] = s
		return nil
	})
	if err != nil {
		return energy.Zero, err
	}
	total := energy.Zero
	for _, c := range costs {
		total = total.Par(c)
	}
	e.net = net
	e.stages = stages
	e.programCost = total
	e.inferences.Store(0)
	e.seq.Store(0)
	return total, nil
}

// Reprogram loads a new network of identical topology into the existing
// arrays (wear accumulates on the same physical cells). With hide=false
// the engine stalls for the full write latency; with hide=true shadow
// arrays absorb the writes behind ongoing inference (the write-asymmetry
// hiding of Section VI) and only a reconfiguration swap appears on the
// critical path.
func (e *Engine) Reprogram(net *nn.Network, hide bool) (energy.Cost, error) {
	return e.ReprogramCtx(obs.Ctx{}, net, hide)
}

// ReprogramCtx is Reprogram with tracing: a "dpe.reprogram" span whose
// children are the per-layer tile.program spans. The span cost is the
// *visible* (possibly hidden) cost — the same value the caller folds.
func (e *Engine) ReprogramCtx(pc obs.Ctx, net *nn.Network, hide bool) (energy.Cost, error) {
	sp := pc.Child("dpe.reprogram")
	cost, err := e.reprogram(sp, net, hide)
	if sp.Active() {
		if hide {
			sp.Annotate("hidden", 1)
		}
	}
	sp.End(cost)
	return cost, err
}

func (e *Engine) reprogram(sp obs.Ctx, net *nn.Network, hide bool) (energy.Cost, error) {
	if e.net == nil {
		return energy.Zero, fmt.Errorf("dpe: Reprogram before Load")
	}
	if net == nil || len(net.Layers) != len(e.stages) {
		return energy.Zero, fmt.Errorf("dpe: Reprogram requires identical topology")
	}
	// Layers rewrite their own arrays, so reprogramming fans across the
	// worker pool; per-layer costs fold in layer order below.
	costs := make([]energy.Cost, len(e.stages))
	err := parallel.ForErr(len(e.stages), func(i int) error {
		s := &e.stages[i]
		switch l := net.Layers[i].(type) {
		case *nn.Dense:
			if s.dense == nil || s.dense.InSize() != l.InSize() || s.dense.OutSize() != l.OutSize() {
				return fmt.Errorf("dpe: layer %d shape mismatch", i)
			}
			c, err := s.tile.ProgramCtx(sp, l.WeightMatrix())
			if err != nil {
				return err
			}
			costs[i] = c
			s.dense, s.layer = l, l
		case *nn.Conv2D:
			if s.conv == nil || s.conv.InSize() != l.InSize() || s.conv.OutSize() != l.OutSize() {
				return fmt.Errorf("dpe: layer %d shape mismatch", i)
			}
			c, err := s.tile.ProgramCtx(sp, l.Im2ColMatrix())
			if err != nil {
				return err
			}
			c.EnergyPJ *= float64(e.cfg.ConvReplicas)
			costs[i] = c
			s.conv, s.layer = l, l
		default:
			if s.tile != nil {
				return fmt.Errorf("dpe: layer %d kind mismatch", i)
			}
			s.layer = net.Layers[i]
		}
		return nil
	})
	if err != nil {
		return energy.Zero, err
	}
	cost := energy.Zero
	for _, c := range costs {
		cost = cost.Par(c)
	}
	e.net = net
	e.programCost = cost
	if hide {
		// Writes retire off the critical path; the visible latency is one
		// buffer swap. Energy is still paid in full.
		return energy.Cost{LatencyPS: energy.EDRAMAccessLatencyPS, EnergyPJ: cost.EnergyPJ}, nil
	}
	return cost, nil
}

// Infer runs one inference, returning the output vector and its cost. The
// inference claims the next noise sequence number, so noisy results depend
// only on (seed, inference index since Load) — not on batching or pool
// width.
func (e *Engine) Infer(in []float64) ([]float64, energy.Cost, error) {
	return e.InferCtx(obs.Ctx{}, in)
}

// InferCtx is Infer with tracing: a "dpe.infer" span with one child per
// stage ("dpe.dense" / "dpe.conv" / "dpe.digital"), each carrying that
// stage's cost and wrapping the tile.mvm spans beneath it.
func (e *Engine) InferCtx(pc obs.Ctx, in []float64) ([]float64, energy.Cost, error) {
	sp := pc.Child("dpe.infer")
	out, cost, err := e.infer(sp, in)
	sp.End(cost)
	return out, cost, err
}

func (e *Engine) infer(sp obs.Ctx, in []float64) ([]float64, energy.Cost, error) {
	if e.net == nil {
		return nil, energy.Zero, fmt.Errorf("dpe: Infer before Load")
	}
	if len(in) != e.net.InSize() {
		return nil, energy.Zero, fmt.Errorf("dpe: input length %d != %d", len(in), e.net.InSize())
	}
	perInf := e.src.Derive(e.seq.Add(1) - 1)
	v := in
	total := energy.Zero
	for i := range e.stages {
		out, cost, err := e.runStage(sp, &e.stages[i], v, perInf.Derive(uint64(i)))
		if err != nil {
			return nil, energy.Zero, fmt.Errorf("dpe: stage %d (%s): %w", i, e.stages[i].layer.Name(), err)
		}
		total = total.Seq(cost)
		v = out
	}
	e.inferences.Add(1)
	return v, total, nil
}

// runStage executes one stage. ns is the stage's derived noise stream
// (src.Derive(inference).Derive(stageIndex)); conv stages derive one child
// per im2col patch, and tiles derive one grandchild per block, so every
// analog draw in the engine has a unique position-keyed counter. pc is
// the enclosing inference span; each stage opens one child under it.
func (e *Engine) runStage(pc obs.Ctx, s *stage, in []float64, ns noise.Source) ([]float64, energy.Cost, error) {
	switch {
	case s.dense != nil:
		sp := pc.Child("dpe.dense")
		out, cost, err := s.tile.MVMCtx(sp, in, ns)
		if err != nil {
			sp.End(energy.Zero)
			return nil, energy.Zero, err
		}
		for o := range out {
			out[o] += s.dense.B[o]
		}
		// Bias adds ride the existing shift-add hardware.
		cost = cost.Seq(energy.Cost{EnergyPJ: float64(len(out)) * energy.ShiftAddEnergyPJ})
		sp.End(cost)
		return out, cost, nil
	case s.conv != nil:
		sp := pc.Child("dpe.conv")
		out, cost, err := e.runConv(sp, s, in, ns)
		if sp.Active() && err == nil {
			sp.Annotate("patches", float64(s.conv.OutH()*s.conv.OutW()))
		}
		sp.End(cost)
		return out, cost, err
	default:
		sp := pc.Child("dpe.digital")
		out, cost, err := e.runDigital(s.layer, in)
		sp.End(cost)
		return out, cost, err
	}
}

// runConv streams im2col patches through the filter crossbar. Replicas
// process patches concurrently: latency covers ceil(patches/replicas)
// waves, energy covers every patch. Patch (oy, ox) draws noise from
// ns.Derive(oy*outW+ox), independent of streaming order.
func (e *Engine) runConv(pc obs.Ctx, s *stage, in []float64, ns noise.Source) ([]float64, energy.Cost, error) {
	l := s.conv
	oh, ow := l.OutH(), l.OutW()
	out := make([]float64, oh*ow*l.F)
	patches := oh * ow
	var patchCost energy.Cost
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			patch, err := l.Patch(in, oy, ox)
			if err != nil {
				return nil, energy.Zero, err
			}
			y, cost, err := s.tile.MVMCtx(pc, patch, ns.Derive(uint64(oy*ow+ox)))
			if err != nil {
				return nil, energy.Zero, err
			}
			patchCost = cost // uniform across patches
			for f := 0; f < l.F; f++ {
				out[(oy*ow+ox)*l.F+f] = y[f] + l.B[f]
			}
		}
	}
	waves := (patches + e.cfg.ConvReplicas - 1) / e.cfg.ConvReplicas
	cost := energy.Cost{
		LatencyPS: patchCost.LatencyPS * int64(waves),
		EnergyPJ:  patchCost.EnergyPJ * float64(patches),
	}
	return out, cost, nil
}

// runDigital executes activation and pooling stages on digital micro-units.
func (e *Engine) runDigital(layer nn.Layer, in []float64) ([]float64, energy.Cost, error) {
	out, err := layer.Forward(in)
	if err != nil {
		return nil, energy.Zero, err
	}
	n := float64(len(in))
	cost := energy.Cost{
		LatencyPS: energy.EDRAMAccessLatencyPS,
		EnergyPJ:  n * (energy.ShiftAddEnergyPJ + energy.EDRAMAccessEnergyPJPerByte),
	}
	return out, cost, nil
}

// InferBatch runs a batch through the engine's stage pipeline. Stages are
// physically distinct (each layer owns its arrays), so once the pipeline
// fills, one result retires per bottleneck-stage interval: latency is
// fill + (n-1) x bottleneck, far better than n x single-inference latency.
// Energy is n x per-inference energy. This is the ISAAC-style throughput
// mode behind the Section VI claims.
//
// The simulator runs the batch stage-major: every item advances through a
// stage together, and dense (and conv, per patch position) stages hand
// the tile the whole item panel in one batched GEMM call, streaming each
// weight panel once per batch instead of once per item. Analog read noise
// stays per item: the batch claims a contiguous run of noise sequence
// numbers up front, and item i draws from the counter-based stream for
// number seq0+i regardless of batching — so noisy outputs match the same
// inputs run through Infer one at a time, and the outputs and returned
// cost are bit-identical at any batch size and worker-pool width.
func (e *Engine) InferBatch(inputs [][]float64) ([][]float64, energy.Cost, error) {
	return e.InferBatchCtx(obs.Ctx{}, inputs)
}

// InferBatchCtx is InferBatch with tracing: a "dpe.infer_batch" span
// (annotated with the batch size) with one per-stage child ("dpe.dense" /
// "dpe.conv" / "dpe.digital") carrying that stage's serial-equivalent
// cost (per-item × batch) and wrapping the tile.mvm_batch spans beneath
// it. The batch span's cost is the pipelined batch cost — fill +
// (n-1)×bottleneck — which is deliberately *less* than the sum of its
// children's serial costs; attribution reports both, and the self column
// clamps at zero.
func (e *Engine) InferBatchCtx(pc obs.Ctx, inputs [][]float64) ([][]float64, energy.Cost, error) {
	sp := pc.Child("dpe.infer_batch")
	outs, cost, err := e.inferBatch(sp, inputs, nil)
	if sp.Active() {
		sp.Annotate("batch", float64(len(inputs)))
	}
	sp.End(cost)
	return outs, cost, err
}

// InferBatchKeyed is InferBatch with caller-owned noise sequence numbers:
// item i draws its analog read noise from the stream for seqs[i] instead of
// claiming the engine's internal inference counter. This is the fleet
// determinism primitive (docs/CLUSTER.md): because the noise stream is a
// pure function of (Config.Seed, sequence number, stage, position), any
// engine built from the same Config produces bit-identical output for the
// same (seq, input) pair — regardless of which engine serves it, how
// requests are batched, or the worker-pool width. The engine's own
// inference counter is untouched; the caller owns the key space (the fleet
// router stamps each request with its global arrival index).
func (e *Engine) InferBatchKeyed(seqs []uint64, inputs [][]float64) ([][]float64, energy.Cost, error) {
	return e.InferBatchKeyedCtx(obs.Ctx{}, seqs, inputs)
}

// InferBatchKeyedCtx is InferBatchKeyed with tracing: the same
// "dpe.infer_batch" span tree as InferBatchCtx, annotated keyed=1.
func (e *Engine) InferBatchKeyedCtx(pc obs.Ctx, seqs []uint64, inputs [][]float64) ([][]float64, energy.Cost, error) {
	if len(seqs) != len(inputs) {
		return nil, energy.Zero, fmt.Errorf("dpe: %d noise keys for %d inputs", len(seqs), len(inputs))
	}
	sp := pc.Child("dpe.infer_batch")
	outs, cost, err := e.inferBatch(sp, inputs, seqs)
	if sp.Active() {
		sp.Annotate("batch", float64(len(inputs)))
		sp.Annotate("keyed", 1)
	}
	sp.End(cost)
	return outs, cost, err
}

// inferBatch runs the batch stage-major: every item advances through
// stage s together, so dense (and conv, per patch position) stages hand
// the tile the whole item panel in one MVMBatchCtx call — the GEMM path
// that streams each weight panel once per batch instead of once per item.
// With seqs == nil, items claim a contiguous run of the engine's
// inference counter (seq0+i); with seqs != nil, item i uses the
// caller-supplied key seqs[i] and the counter does not advance. Either
// way item i's stage-s draws come from src.Derive(key_i).Derive(s) — the
// exact streams the item-major loop used — so outputs stay bit-identical
// to running the items through Infer one at a time.
func (e *Engine) inferBatch(sp obs.Ctx, inputs [][]float64, seqs []uint64) ([][]float64, energy.Cost, error) {
	if e.net == nil {
		return nil, energy.Zero, fmt.Errorf("dpe: InferBatch before Load")
	}
	if len(inputs) == 0 {
		return nil, energy.Zero, fmt.Errorf("dpe: empty batch")
	}
	for i, in := range inputs {
		if len(in) != e.net.InSize() {
			return nil, energy.Zero, fmt.Errorf("dpe: input %d length %d != %d", i, len(in), e.net.InSize())
		}
	}

	n := len(inputs)
	var seq0 uint64
	if seqs == nil {
		seq0 = e.seq.Add(uint64(n)) - uint64(n)
	}
	perInf := make([]noise.Source, n)
	for i := range perInf {
		key := seq0 + uint64(i)
		if seqs != nil {
			key = seqs[i]
		}
		perInf[i] = e.src.Derive(key)
	}

	vs := make([][]float64, n)
	copy(vs, inputs)
	nss := make([]noise.Source, n)
	// Stage costs are uniform across items (every item runs the same
	// arrays), so one per-item total and the bottleneck stage suffice for
	// the pipelined batch cost.
	total := energy.Zero
	var stageMax int64
	for s := range e.stages {
		for i := range nss {
			nss[i] = perInf[i].Derive(uint64(s))
		}
		outs, cost, err := e.runStageBatch(sp, &e.stages[s], vs, nss)
		if err != nil {
			return nil, energy.Zero, fmt.Errorf("dpe: stage %d (%s): %w", s, e.stages[s].layer.Name(), err)
		}
		total = total.Seq(cost)
		if cost.LatencyPS > stageMax {
			stageMax = cost.LatencyPS
		}
		vs = outs
	}
	e.inferences.Add(int64(n))

	cost := energy.Cost{
		LatencyPS: total.LatencyPS + int64(n-1)*stageMax,
		EnergyPJ:  total.EnergyPJ * float64(n),
	}
	return vs, cost, nil
}

// runStageBatch executes one stage for the whole batch. nss[i] is item
// i's derived stage stream (src.Derive(key_i).Derive(stageIndex)) — the
// same derivation runStage hands a lone inference, so every analog draw
// keeps its unique position-keyed counter. Each stage opens one span for
// the batch carrying the serial-equivalent cost (per-item × batch); the
// returned cost is the uniform per-item stage cost.
func (e *Engine) runStageBatch(pc obs.Ctx, s *stage, ins [][]float64, nss []noise.Source) ([][]float64, energy.Cost, error) {
	n := len(ins)
	switch {
	case s.dense != nil:
		sp := pc.Child("dpe.dense")
		outs, cost, err := s.tile.MVMBatchCtx(sp, ins, nss)
		if err != nil {
			sp.End(energy.Zero)
			return nil, energy.Zero, err
		}
		for _, out := range outs {
			for o := range out {
				out[o] += s.dense.B[o]
			}
		}
		// Bias adds ride the existing shift-add hardware.
		cost = cost.Seq(energy.Cost{EnergyPJ: float64(len(outs[0])) * energy.ShiftAddEnergyPJ})
		sp.End(energy.Cost{
			LatencyPS: cost.LatencyPS * int64(n),
			EnergyPJ:  cost.EnergyPJ * float64(n),
		})
		return outs, cost, nil
	case s.conv != nil:
		sp := pc.Child("dpe.conv")
		outs, cost, err := e.runConvBatch(sp, s, ins, nss)
		if sp.Active() && err == nil {
			sp.Annotate("patches", float64(s.conv.OutH()*s.conv.OutW()))
			sp.Annotate("batch", float64(n))
		}
		sp.End(energy.Cost{
			LatencyPS: cost.LatencyPS * int64(n),
			EnergyPJ:  cost.EnergyPJ * float64(n),
		})
		return outs, cost, err
	default:
		sp := pc.Child("dpe.digital")
		outs := make([][]float64, n)
		var cost energy.Cost
		for i := range ins {
			out, c, err := e.runDigital(s.layer, ins[i])
			if err != nil {
				sp.End(energy.Zero)
				return nil, energy.Zero, err
			}
			outs[i], cost = out, c
		}
		sp.End(energy.Cost{
			LatencyPS: cost.LatencyPS * int64(n),
			EnergyPJ:  cost.EnergyPJ * float64(n),
		})
		return outs, cost, nil
	}
}

// runConvBatch streams im2col patches through the filter crossbar for the
// whole batch, one batched tile MVM per patch position: the filter panel
// is streamed once per batch per position instead of once per item. Patch
// (oy, ox) of item i draws noise from nss[i].Derive(oy*outW+ox) — the
// derivation runConv uses — independent of streaming order. Replica
// accounting is unchanged: per item, latency covers ceil(patches/
// replicas) waves and energy covers every patch.
func (e *Engine) runConvBatch(pc obs.Ctx, s *stage, ins [][]float64, nss []noise.Source) ([][]float64, energy.Cost, error) {
	l := s.conv
	oh, ow := l.OutH(), l.OutW()
	n := len(ins)
	outs := make([][]float64, n)
	slab := make([]float64, n*oh*ow*l.F)
	for i := range outs {
		outs[i] = slab[i*oh*ow*l.F : (i+1)*oh*ow*l.F]
	}
	patches := oh * ow
	patchIns := make([][]float64, n)
	patchNss := make([]noise.Source, n)
	var patchCost energy.Cost
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			p := oy*ow + ox
			for i := range ins {
				patch, err := l.Patch(ins[i], oy, ox)
				if err != nil {
					return nil, energy.Zero, err
				}
				patchIns[i] = patch
				patchNss[i] = nss[i].Derive(uint64(p))
			}
			ys, cost, err := s.tile.MVMBatchCtx(pc, patchIns, patchNss)
			if err != nil {
				return nil, energy.Zero, err
			}
			patchCost = cost // uniform across patches
			for i := range ins {
				for f := 0; f < l.F; f++ {
					outs[i][p*l.F+f] = ys[i][f] + l.B[f]
				}
			}
		}
	}
	waves := (patches + e.cfg.ConvReplicas - 1) / e.cfg.ConvReplicas
	cost := energy.Cost{
		LatencyPS: patchCost.LatencyPS * int64(waves),
		EnergyPJ:  patchCost.EnergyPJ * float64(patches),
	}
	return outs, cost, nil
}

// EffectiveWeightBandwidth returns the rate at which an inference "touches"
// weight bytes without moving them, in bytes/s: the Section VI bandwidth
// metric. A Von Neumann machine must physically stream the same bytes
// through its memory interface.
func (e *Engine) EffectiveWeightBandwidth(inferCost energy.Cost) float64 {
	if inferCost.LatencyPS == 0 {
		return 0
	}
	return e.WeightBytes() / inferCost.Latency()
}
