// Package dpe implements the Dot Product Engine, the paper's Section VI
// system: "we have implemented [a] static data flow CIM model which enables
// us to program and reconfigure the CIM for classes of neural networks",
// the follow-on to ISAAC [49] "extended to be more programmable".
//
// An Engine holds a neural network entirely in crossbar arrays: dense
// layers map to tiles of memristive crossbars, convolutions are lowered via
// im2col and streamed patch-by-patch through replicated filter crossbars,
// and activations run on digital micro-units. Because the weights never
// move, each inference costs only input/output streaming plus in-place
// analog reads — the root of the latency, bandwidth, and power advantages
// Section VI reports and this package's experiments reproduce.
package dpe

import (
	"fmt"
	"math/rand"

	"cimrev/internal/crossbar"
	"cimrev/internal/energy"
	"cimrev/internal/nn"
)

// Config configures an Engine.
type Config struct {
	// Crossbar configures the underlying arrays.
	Crossbar crossbar.Config
	// ConvReplicas is how many copies of each convolution's filter
	// crossbar exist; patches stream through replicas in parallel.
	ConvReplicas int
	// Seed drives analog noise.
	Seed int64
}

// DefaultConfig returns ISAAC-scale arrays in functional-simulation mode
// with 4-way conv replication.
func DefaultConfig() Config {
	xb := crossbar.DefaultConfig()
	xb.Functional = true
	return Config{Crossbar: xb, ConvReplicas: 4, Seed: 1}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.ConvReplicas <= 0 {
		return fmt.Errorf("dpe: ConvReplicas must be positive, got %d", c.ConvReplicas)
	}
	return c.Crossbar.Validate()
}

// stage is one loaded layer.
type stage struct {
	layer nn.Layer
	// tile holds weights for Dense and Conv2D stages.
	tile *crossbar.Tile
	// conv is set for Conv2D stages.
	conv *nn.Conv2D
	// dense is set for Dense stages.
	dense *nn.Dense
}

// Engine is a programmed Dot Product Engine.
type Engine struct {
	cfg    Config
	rng    *rand.Rand
	net    *nn.Network
	stages []stage

	programCost energy.Cost
	inferences  int64
}

// New returns an empty engine.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Network returns the loaded network (nil before Load).
func (e *Engine) Network() *nn.Network { return e.net }

// ProgramCost returns the cost of the most recent Load — dominated by the
// slow memristor writes (Section VI's asymmetry).
func (e *Engine) ProgramCost() energy.Cost { return e.programCost }

// Inferences returns how many inferences have run since Load.
func (e *Engine) Inferences() int64 { return e.inferences }

// CrossbarCount returns the number of physical crossbar arrays in use.
func (e *Engine) CrossbarCount() int {
	var n int
	for _, s := range e.stages {
		if s.tile != nil {
			mult := 1
			if s.conv != nil {
				mult = e.cfg.ConvReplicas
			}
			n += s.tile.CrossbarCount() * mult
		}
	}
	return n
}

// WeightBytes returns the bytes of weights held stationary in the arrays.
func (e *Engine) WeightBytes() float64 {
	if e.net == nil {
		return 0
	}
	return float64(e.net.Params()) * float64(e.cfg.Crossbar.WeightBits) / 8
}

// Load programs the network into crossbar hardware, returning the
// programming cost. Layers program in parallel across their own arrays
// (latency is the max stage cost; energy sums).
func (e *Engine) Load(net *nn.Network) (energy.Cost, error) {
	if net == nil || len(net.Layers) == 0 {
		return energy.Zero, fmt.Errorf("dpe: empty network")
	}
	stages := make([]stage, 0, len(net.Layers))
	total := energy.Zero
	for i, layer := range net.Layers {
		s := stage{layer: layer}
		switch l := layer.(type) {
		case *nn.Dense:
			tile, err := crossbar.NewTile(e.cfg.Crossbar)
			if err != nil {
				return energy.Zero, err
			}
			cost, err := tile.Program(l.WeightMatrix())
			if err != nil {
				return energy.Zero, fmt.Errorf("dpe: program layer %d (%s): %w", i, l.Name(), err)
			}
			total = total.Par(cost)
			s.tile, s.dense = tile, l
		case *nn.Conv2D:
			tile, err := crossbar.NewTile(e.cfg.Crossbar)
			if err != nil {
				return energy.Zero, err
			}
			cost, err := tile.Program(l.Im2ColMatrix())
			if err != nil {
				return energy.Zero, fmt.Errorf("dpe: program layer %d (%s): %w", i, l.Name(), err)
			}
			// Replicas program in parallel but all cells cost energy.
			cost.EnergyPJ *= float64(e.cfg.ConvReplicas)
			total = total.Par(cost)
			s.tile, s.conv = tile, l
		case *nn.ActivationLayer, *nn.MaxPool2D:
			// Digital stages need no programming.
		default:
			return energy.Zero, fmt.Errorf("dpe: unsupported layer %d (%s)", i, layer.Name())
		}
		stages = append(stages, s)
	}
	e.net = net
	e.stages = stages
	e.programCost = total
	e.inferences = 0
	return total, nil
}

// Reprogram loads a new network of identical topology into the existing
// arrays (wear accumulates on the same physical cells). With hide=false
// the engine stalls for the full write latency; with hide=true shadow
// arrays absorb the writes behind ongoing inference (the write-asymmetry
// hiding of Section VI) and only a reconfiguration swap appears on the
// critical path.
func (e *Engine) Reprogram(net *nn.Network, hide bool) (energy.Cost, error) {
	if e.net == nil {
		return energy.Zero, fmt.Errorf("dpe: Reprogram before Load")
	}
	if net == nil || len(net.Layers) != len(e.stages) {
		return energy.Zero, fmt.Errorf("dpe: Reprogram requires identical topology")
	}
	cost := energy.Zero
	for i := range e.stages {
		s := &e.stages[i]
		switch l := net.Layers[i].(type) {
		case *nn.Dense:
			if s.dense == nil || s.dense.InSize() != l.InSize() || s.dense.OutSize() != l.OutSize() {
				return energy.Zero, fmt.Errorf("dpe: layer %d shape mismatch", i)
			}
			c, err := s.tile.Program(l.WeightMatrix())
			if err != nil {
				return energy.Zero, err
			}
			cost = cost.Par(c)
			s.dense, s.layer = l, l
		case *nn.Conv2D:
			if s.conv == nil || s.conv.InSize() != l.InSize() || s.conv.OutSize() != l.OutSize() {
				return energy.Zero, fmt.Errorf("dpe: layer %d shape mismatch", i)
			}
			c, err := s.tile.Program(l.Im2ColMatrix())
			if err != nil {
				return energy.Zero, err
			}
			c.EnergyPJ *= float64(e.cfg.ConvReplicas)
			cost = cost.Par(c)
			s.conv, s.layer = l, l
		default:
			if s.tile != nil {
				return energy.Zero, fmt.Errorf("dpe: layer %d kind mismatch", i)
			}
			s.layer = net.Layers[i]
		}
	}
	e.net = net
	e.programCost = cost
	if hide {
		// Writes retire off the critical path; the visible latency is one
		// buffer swap. Energy is still paid in full.
		return energy.Cost{LatencyPS: energy.EDRAMAccessLatencyPS, EnergyPJ: cost.EnergyPJ}, nil
	}
	return cost, nil
}

// Infer runs one inference, returning the output vector and its cost.
func (e *Engine) Infer(in []float64) ([]float64, energy.Cost, error) {
	if e.net == nil {
		return nil, energy.Zero, fmt.Errorf("dpe: Infer before Load")
	}
	if len(in) != e.net.InSize() {
		return nil, energy.Zero, fmt.Errorf("dpe: input length %d != %d", len(in), e.net.InSize())
	}
	v := in
	total := energy.Zero
	for i := range e.stages {
		out, cost, err := e.runStage(&e.stages[i], v)
		if err != nil {
			return nil, energy.Zero, fmt.Errorf("dpe: stage %d (%s): %w", i, e.stages[i].layer.Name(), err)
		}
		total = total.Seq(cost)
		v = out
	}
	e.inferences++
	return v, total, nil
}

func (e *Engine) runStage(s *stage, in []float64) ([]float64, energy.Cost, error) {
	switch {
	case s.dense != nil:
		out, cost, err := s.tile.MVM(in, e.rng)
		if err != nil {
			return nil, energy.Zero, err
		}
		for o := range out {
			out[o] += s.dense.B[o]
		}
		// Bias adds ride the existing shift-add hardware.
		cost = cost.Seq(energy.Cost{EnergyPJ: float64(len(out)) * energy.ShiftAddEnergyPJ})
		return out, cost, nil
	case s.conv != nil:
		return e.runConv(s, in)
	default:
		return e.runDigital(s.layer, in)
	}
}

// runConv streams im2col patches through the filter crossbar. Replicas
// process patches concurrently: latency covers ceil(patches/replicas)
// waves, energy covers every patch.
func (e *Engine) runConv(s *stage, in []float64) ([]float64, energy.Cost, error) {
	l := s.conv
	oh, ow := l.OutH(), l.OutW()
	out := make([]float64, oh*ow*l.F)
	patches := oh * ow
	var patchCost energy.Cost
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			patch, err := l.Patch(in, oy, ox)
			if err != nil {
				return nil, energy.Zero, err
			}
			y, cost, err := s.tile.MVM(patch, e.rng)
			if err != nil {
				return nil, energy.Zero, err
			}
			patchCost = cost // uniform across patches
			for f := 0; f < l.F; f++ {
				out[(oy*ow+ox)*l.F+f] = y[f] + l.B[f]
			}
		}
	}
	waves := (patches + e.cfg.ConvReplicas - 1) / e.cfg.ConvReplicas
	cost := energy.Cost{
		LatencyPS: patchCost.LatencyPS * int64(waves),
		EnergyPJ:  patchCost.EnergyPJ * float64(patches),
	}
	return out, cost, nil
}

// runDigital executes activation and pooling stages on digital micro-units.
func (e *Engine) runDigital(layer nn.Layer, in []float64) ([]float64, energy.Cost, error) {
	out, err := layer.Forward(in)
	if err != nil {
		return nil, energy.Zero, err
	}
	n := float64(len(in))
	cost := energy.Cost{
		LatencyPS: energy.EDRAMAccessLatencyPS,
		EnergyPJ:  n * (energy.ShiftAddEnergyPJ + energy.EDRAMAccessEnergyPJPerByte),
	}
	return out, cost, nil
}

// InferBatch runs a batch through the engine's stage pipeline. Stages are
// physically distinct (each layer owns its arrays), so once the pipeline
// fills, one result retires per bottleneck-stage interval: latency is
// fill + (n-1) x bottleneck, far better than n x single-inference latency.
// Energy is n x per-inference energy. This is the ISAAC-style throughput
// mode behind the Section VI claims.
func (e *Engine) InferBatch(inputs [][]float64) ([][]float64, energy.Cost, error) {
	if e.net == nil {
		return nil, energy.Zero, fmt.Errorf("dpe: InferBatch before Load")
	}
	if len(inputs) == 0 {
		return nil, energy.Zero, fmt.Errorf("dpe: empty batch")
	}
	outs := make([][]float64, len(inputs))
	var fill energy.Cost
	var bottleneck int64
	var perInferEnergy float64
	for i, in := range inputs {
		if len(in) != e.net.InSize() {
			return nil, energy.Zero, fmt.Errorf("dpe: input %d length %d != %d", i, len(in), e.net.InSize())
		}
		v := in
		var stageMax int64
		total := energy.Zero
		for s := range e.stages {
			out, cost, err := e.runStage(&e.stages[s], v)
			if err != nil {
				return nil, energy.Zero, fmt.Errorf("dpe: batch %d stage %d: %w", i, s, err)
			}
			total = total.Seq(cost)
			if cost.LatencyPS > stageMax {
				stageMax = cost.LatencyPS
			}
			v = out
		}
		outs[i] = v
		e.inferences++
		if i == 0 {
			fill = total
			bottleneck = stageMax
			perInferEnergy = total.EnergyPJ
		}
	}
	cost := energy.Cost{
		LatencyPS: fill.LatencyPS + int64(len(inputs)-1)*bottleneck,
		EnergyPJ:  perInferEnergy * float64(len(inputs)),
	}
	return outs, cost, nil
}

// EffectiveWeightBandwidth returns the rate at which an inference "touches"
// weight bytes without moving them, in bytes/s: the Section VI bandwidth
// metric. A Von Neumann machine must physically stream the same bytes
// through its memory interface.
func (e *Engine) EffectiveWeightBandwidth(inferCost energy.Cost) float64 {
	if inferCost.LatencyPS == 0 {
		return 0
	}
	return e.WeightBytes() / inferCost.Latency()
}
