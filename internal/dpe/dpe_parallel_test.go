package dpe

import (
	"math/rand"
	"testing"

	"cimrev/internal/energy"
	"cimrev/internal/parallel"
)

// batchRun loads a fresh engine and runs a batch at the given pool width,
// returning everything the equivalence tests compare.
func batchRun(t *testing.T, width, batch int) ([][]float64, energy.Cost, energy.Cost, int64) {
	t.Helper()
	parallel.SetWidth(width)

	net := mlp(t, 96, 80, 24, 10) // spans multiple 64x64 tiles per layer
	eng, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	progCost, err := eng.Load(net)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	inputs := make([][]float64, batch)
	for i := range inputs {
		inputs[i] = make([]float64, 96)
		for j := range inputs[i] {
			inputs[i][j] = rng.Float64()*2 - 1
		}
	}
	outs, cost, err := eng.InferBatch(inputs)
	if err != nil {
		t.Fatal(err)
	}
	return outs, progCost, cost, eng.Inferences()
}

// TestInferBatchParallelEquivalence is the DPE half of the determinism
// contract: batch outputs, programming cost, and batch energy/latency must
// be bit-identical at pool widths 1, 4, and 16.
func TestInferBatchParallelEquivalence(t *testing.T) {
	t.Cleanup(func() { parallel.SetWidth(0) })

	const batch = 17 // deliberately not a multiple of any width
	refOuts, refProg, refCost, refInf := batchRun(t, 1, batch)
	if refInf != batch {
		t.Fatalf("serial Inferences() = %d, want %d", refInf, batch)
	}
	for _, w := range []int{4, 16} {
		outs, prog, cost, inf := batchRun(t, w, batch)
		if prog != refProg {
			t.Fatalf("width %d: program cost %v != serial %v", w, prog, refProg)
		}
		if cost != refCost {
			t.Fatalf("width %d: batch cost %v != serial %v", w, cost, refCost)
		}
		if inf != batch {
			t.Fatalf("width %d: Inferences() = %d, want %d", w, inf, batch)
		}
		if len(outs) != len(refOuts) {
			t.Fatalf("width %d: %d outputs, want %d", w, len(outs), len(refOuts))
		}
		for i := range outs {
			for j := range outs[i] {
				if outs[i][j] != refOuts[i][j] {
					t.Fatalf("width %d: out[%d][%d] = %v != serial %v",
						w, i, j, outs[i][j], refOuts[i][j])
				}
			}
		}
	}
}

// noisyTestConfig is the shared configuration for the noisy equivalence
// tests: honest bit-serial pipeline with read noise live.
func noisyTestConfig() Config {
	cfg := testConfig()
	cfg.Crossbar.Functional = false
	cfg.Crossbar.ReadNoise = 0.01
	cfg.Seed = 5
	return cfg
}

func noisyTestInputs(n, dim int) [][]float64 {
	rng := rand.New(rand.NewSource(21))
	inputs := make([][]float64, n)
	for i := range inputs {
		inputs[i] = make([]float64, dim)
		for j := range inputs[i] {
			inputs[i][j] = rng.Float64()*2 - 1
		}
	}
	return inputs
}

// TestInferBatchNoisyParallelEquivalence: with counter-based noise each
// batch item draws from its own derived stream (keyed by inference number,
// not by goroutine schedule), so noisy batches fan out across the pool and
// still produce bit-identical outputs at widths 1, 4, and 16. This test
// replaced the old sequential-fallback test when the fallback branch was
// deleted.
func TestInferBatchNoisyParallelEquivalence(t *testing.T) {
	t.Cleanup(func() { parallel.SetWidth(0) })

	run := func(width int) [][]float64 {
		parallel.SetWidth(width)
		eng, err := New(noisyTestConfig())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Load(mlp(t, 32, 16, 8)); err != nil {
			t.Fatal(err)
		}
		outs, _, err := eng.InferBatch(noisyTestInputs(6, 32))
		if err != nil {
			t.Fatal(err)
		}
		return outs
	}
	ref := run(1)
	for _, w := range []int{4, 16} {
		got := run(w)
		for i := range got {
			for j := range got[i] {
				if got[i][j] != ref[i][j] {
					t.Fatalf("width %d: noisy out[%d][%d] = %v != serial %v",
						w, i, j, got[i][j], ref[i][j])
				}
			}
		}
	}
}

// TestInferBatchNoisyMatchesSerialInfer: the noise tree is keyed by
// inference sequence number, so batch item i must be bit-identical to the
// i-th Infer call on a freshly loaded engine — batching is purely a
// wall-clock optimization, never a semantic one.
func TestInferBatchNoisyMatchesSerialInfer(t *testing.T) {
	t.Cleanup(func() { parallel.SetWidth(0) })
	parallel.SetWidth(8)

	inputs := noisyTestInputs(6, 32)

	engA, err := New(noisyTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engA.Load(mlp(t, 32, 16, 8)); err != nil {
		t.Fatal(err)
	}
	batchOuts, _, err := engA.InferBatch(inputs)
	if err != nil {
		t.Fatal(err)
	}

	engB, err := New(noisyTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engB.Load(mlp(t, 32, 16, 8)); err != nil {
		t.Fatal(err)
	}
	for i, in := range inputs {
		out, _, err := engB.Infer(in)
		if err != nil {
			t.Fatal(err)
		}
		for j := range out {
			if out[j] != batchOuts[i][j] {
				t.Fatalf("item %d col %d: Infer %v != InferBatch %v",
					i, j, out[j], batchOuts[i][j])
			}
		}
	}
}

// TestReprogramParallelEquivalence: layer reprogramming costs fold in layer
// order, so Reprogram totals must match across widths too.
func TestReprogramParallelEquivalence(t *testing.T) {
	t.Cleanup(func() { parallel.SetWidth(0) })

	run := func(width int) (energy.Cost, energy.Cost) {
		parallel.SetWidth(width)
		eng, err := New(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Load(mlp(t, 80, 40, 12)); err != nil {
			t.Fatal(err)
		}
		// Same-topology replacement weights.
		net2 := mlp(t, 80, 40, 12)
		stall, err := eng.Reprogram(net2, false)
		if err != nil {
			t.Fatal(err)
		}
		hidden, err := eng.Reprogram(net2, true)
		if err != nil {
			t.Fatal(err)
		}
		return stall, hidden
	}
	refStall, refHidden := run(1)
	for _, w := range []int{4, 16} {
		stall, hidden := run(w)
		if stall != refStall || hidden != refHidden {
			t.Fatalf("width %d: reprogram costs (%v,%v) != serial (%v,%v)",
				w, stall, hidden, refStall, refHidden)
		}
	}
}

// TestClusterParallelEquivalence: cluster batches split across boards must
// produce identical outputs and totals at any pool width.
func TestClusterParallelEquivalence(t *testing.T) {
	t.Cleanup(func() { parallel.SetWidth(0) })

	run := func(width int) ([][]float64, energy.Cost) {
		parallel.SetWidth(width)
		cluster, err := NewCluster(testConfig(), 3, 1.0, 100e9)
		if err != nil {
			t.Fatal(err)
		}
		net := mlp(t, 48, 24, 8)
		if _, err := cluster.Load(net); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(31))
		inputs := make([][]float64, 10)
		for i := range inputs {
			inputs[i] = make([]float64, 48)
			for j := range inputs[i] {
				inputs[i][j] = rng.Float64()*2 - 1
			}
		}
		outs, cost, err := cluster.InferBatch(inputs)
		if err != nil {
			t.Fatal(err)
		}
		return outs, cost
	}
	refOuts, refCost := run(1)
	for _, w := range []int{4, 16} {
		outs, cost := run(w)
		if cost != refCost {
			t.Fatalf("width %d: cluster cost %v != serial %v", w, cost, refCost)
		}
		for i := range outs {
			for j := range outs[i] {
				if outs[i][j] != refOuts[i][j] {
					t.Fatalf("width %d: cluster out[%d][%d] differs", w, i, j)
				}
			}
		}
	}
}

// TestInferencesCounterConcurrentRead: Inferences() must be safe to read
// while a batch is retiring from pool workers (exercised under -race).
func TestInferencesCounterConcurrentRead(t *testing.T) {
	t.Cleanup(func() { parallel.SetWidth(0) })
	parallel.SetWidth(8)

	eng, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Load(mlp(t, 64, 16, 4)); err != nil {
		t.Fatal(err)
	}
	inputs := make([][]float64, 32)
	for i := range inputs {
		inputs[i] = make([]float64, 64)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = eng.Inferences()
		}
	}()
	if _, _, err := eng.InferBatch(inputs); err != nil {
		t.Fatal(err)
	}
	<-done
	if got := eng.Inferences(); got != int64(len(inputs)) {
		t.Fatalf("Inferences() = %d, want %d", got, len(inputs))
	}
}
