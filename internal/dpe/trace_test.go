package dpe

import (
	"fmt"
	"reflect"
	"testing"

	"cimrev/internal/energy"
	"cimrev/internal/obs"
	"cimrev/internal/parallel"
)

// traceInputs builds a deterministic batch of inputs.
func traceInputs(n, dim int) [][]float64 {
	inputs := make([][]float64, n)
	for i := range inputs {
		inputs[i] = make([]float64, dim)
		for j := range inputs[i] {
			inputs[i][j] = float64((i*31+j*7)%17)/8.5 - 1
		}
	}
	return inputs
}

// TestTraceBitIdenticalAcrossWidths is the tracing acceptance test: a
// traced run's outputs AND its per-span cost fold (obs.SumRoots) must be
// bit-identical to the untraced run, at worker-pool widths 1, 4, and 16,
// in both functional and noisy modes. Tracing is observation only — it
// must never perturb the simulation it measures.
func TestTraceBitIdenticalAcrossWidths(t *testing.T) {
	t.Cleanup(func() { parallel.SetWidth(0) })
	noisy := testConfig()
	noisy.Crossbar.Functional = false
	noisy.Crossbar.ReadNoise = 0.02
	noisy.Seed = 42
	cfgs := map[string]Config{"functional": testConfig(), "noisy": noisy}

	for name, cfg := range cfgs {
		for _, width := range []int{1, 4, 16} {
			t.Run(fmt.Sprintf("%s/width=%d", name, width), func(t *testing.T) {
				parallel.SetWidth(width)
				net := mlp(t, 32, 24, 10)
				inputs := traceInputs(12, 32)

				// Untraced reference: serial driver folding with Seq.
				ref, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				untraced, err := ref.Load(net)
				if err != nil {
					t.Fatal(err)
				}
				var refOuts [][]float64
				for k := 0; k < len(inputs); k += 4 {
					outs, cost, err := ref.InferBatch(inputs[k : k+4])
					if err != nil {
						t.Fatal(err)
					}
					refOuts = append(refOuts, outs...)
					untraced = untraced.Seq(cost)
				}

				// Traced run: identical driver under an enabled tracer.
				tr := obs.New()
				eng, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				root := tr.Root("run.load")
				cost, err := eng.LoadCtx(root, net)
				root.End(cost)
				if err != nil {
					t.Fatal(err)
				}
				var outs [][]float64
				for k := 0; k < len(inputs); k += 4 {
					root := tr.Root("run.infer_batch")
					o, c, err := eng.InferBatchCtx(root, inputs[k:k+4])
					root.End(c)
					if err != nil {
						t.Fatal(err)
					}
					outs = append(outs, o...)
				}

				if !reflect.DeepEqual(outs, refOuts) {
					t.Fatal("traced outputs differ from untraced outputs")
				}
				spans := tr.Snapshot()
				if tr.Dropped() != 0 {
					t.Fatalf("tracer dropped %d spans", tr.Dropped())
				}
				if got := obs.SumRoots(spans); got != untraced {
					t.Fatalf("SumRoots = %+v, untraced total = %+v (must be bit-identical)", got, untraced)
				}
			})
		}
	}
}

// TestTraceSpanTree pins the shape of the engine's span tree: one
// dpe.infer_batch span with one per-stage child (the batch runs
// stage-major), each wrapping batched MVM spans whose descendants reach
// the crossbar layer — and every child well-nested under its parent.
func TestTraceSpanTree(t *testing.T) {
	net := mlp(t, 32, 24, 10)
	eng, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New()
	root := tr.Root("run.load")
	cost, err := eng.LoadCtx(root, net)
	root.End(cost)
	if err != nil {
		t.Fatal(err)
	}
	const batch = 5
	root = tr.Root("run.infer_batch")
	_, c, err := eng.InferBatchCtx(root, traceInputs(batch, 32))
	root.End(c)
	if err != nil {
		t.Fatal(err)
	}

	spans := tr.Snapshot()
	count := map[string]int{}
	byID := map[uint64]obs.Span{}
	for _, s := range spans {
		count[s.Name]++
		byID[s.ID] = s
	}
	if count["dpe.load"] != 1 {
		t.Errorf("dpe.load spans = %d, want 1", count["dpe.load"])
	}
	if count["tile.program"] == 0 || count["xbar.program"] == 0 {
		t.Errorf("programming spans missing: tile=%d xbar=%d",
			count["tile.program"], count["xbar.program"])
	}
	if count["dpe.infer_batch"] != 1 {
		t.Errorf("dpe.infer_batch spans = %d, want 1", count["dpe.infer_batch"])
	}
	// Stage-major batching: one stage span per stage for the whole batch,
	// not one per item — there are no per-item dpe.infer children.
	if count["dpe.infer"] != 0 {
		t.Errorf("dpe.infer spans = %d, want 0 (stage-major batch)", count["dpe.infer"])
	}
	// Two dense stages, each with one batched MVM reaching the tile and
	// crossbar layers.
	if count["dpe.dense"] != 2 {
		t.Errorf("dpe.dense spans = %d, want 2", count["dpe.dense"])
	}
	if count["tile.mvm_batch"] != 2 || count["xbar.mvm_batch"] == 0 {
		t.Errorf("MVM spans: tile.mvm_batch=%d (want 2) xbar.mvm_batch=%d (want >0)",
			count["tile.mvm_batch"], count["xbar.mvm_batch"])
	}
	// Structural well-formedness: every parent exists, children nest.
	for _, s := range spans {
		if s.Parent == 0 {
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			t.Fatalf("span %q has unknown parent %d", s.Name, s.Parent)
		}
		if s.StartNS < p.StartNS || s.EndNS > p.EndNS {
			t.Errorf("span %q not nested in parent %q", s.Name, p.Name)
		}
	}
	// The batch annotation rides on the batch span.
	for _, s := range spans {
		if s.Name == "dpe.infer_batch" {
			if v, ok := s.Note("batch"); !ok || v != batch {
				t.Errorf("dpe.infer_batch batch note = %v, %v", v, ok)
			}
		}
	}
	// Pipelined batch cost is intentionally below the sum of its
	// children's serial costs — the batch overlaps stages; attribution
	// clamps self-cost at zero rather than inventing negative cost.
	var batchSpan obs.Span
	var childSum energy.Cost
	for _, s := range spans {
		if s.Name == "dpe.infer_batch" {
			batchSpan = s
		}
	}
	for _, s := range spans {
		if s.Parent == batchSpan.ID {
			childSum.LatencyPS += s.Cost.LatencyPS
			childSum.EnergyPJ += s.Cost.EnergyPJ
		}
	}
	if batchSpan.Cost.LatencyPS >= childSum.LatencyPS {
		t.Errorf("pipelined batch latency %d not below serial child sum %d",
			batchSpan.Cost.LatencyPS, childSum.LatencyPS)
	}
	rows := obs.Attribution(spans)
	for _, r := range rows {
		if r.SelfSimPS < 0 || r.SelfEnergyPJ < 0 {
			t.Errorf("attribution row %q has negative self cost", r.Name)
		}
	}
}
