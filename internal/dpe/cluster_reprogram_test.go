package dpe

import (
	"math/rand"
	"testing"

	"cimrev/internal/energy"
	"cimrev/internal/nn"
	"cimrev/internal/parallel"
)

// clusterForReprogram builds a small loaded cluster plus a second
// same-topology network with different weights.
func clusterForReprogram(t *testing.T, boards int) (*Cluster, *nn.Network) {
	t.Helper()
	cl, err := NewCluster(testConfig(), boards, 5, 12.5e9)
	if err != nil {
		t.Fatal(err)
	}
	netA := mlp(t, 48, 32, 10)
	if _, err := cl.Load(netA); err != nil {
		t.Fatal(err)
	}
	netB, err := nn.NewMLP("mlp-v2", []int{48, 32, 10}, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	return cl, netB
}

// TestClusterReprogramAllHiding pins the write-asymmetry-hiding contract
// across a multi-board cluster:
//
//   - hide=false: boards rewrite in parallel, so the cluster-wide latency
//     is the per-board reprogram latency (max over boards, NOT the sum),
//     and energy is boards x per-board energy.
//   - hide=true: the visible latency collapses to one buffer swap while
//     the energy is identical to hide=false — hiding moves the write off
//     the critical path, it does not make the writes free.
func TestClusterReprogramAllHiding(t *testing.T) {
	const boards = 3
	cl, netB := clusterForReprogram(t, boards)

	full, err := cl.ReprogramAll(netB, false)
	if err != nil {
		t.Fatal(err)
	}
	hidden, err := cl.ReprogramAll(netB, true)
	if err != nil {
		t.Fatal(err)
	}

	// Energy is identical across modes: every cell is written either way.
	if hidden.EnergyPJ != full.EnergyPJ {
		t.Errorf("hidden energy %g pJ != full energy %g pJ (hiding must not change energy)",
			hidden.EnergyPJ, full.EnergyPJ)
	}

	// Reference: the same reprogram on a single standalone board.
	eng, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Load(mlp(t, 48, 32, 10)); err != nil {
		t.Fatal(err)
	}
	single, err := eng.Reprogram(netB, false)
	if err != nil {
		t.Fatal(err)
	}

	// hide=false latency: boards overlap, so cluster latency == one
	// board's latency (max, not sum)...
	if full.LatencyPS != single.LatencyPS {
		t.Errorf("cluster hide=false latency %d ps != single-board %d ps (boards must overlap: max, not sum)",
			full.LatencyPS, single.LatencyPS)
	}
	if wrongSum := single.LatencyPS * boards; full.LatencyPS == wrongSum && boards > 1 {
		t.Errorf("cluster latency equals %d x single board (%d ps): boards serialized instead of overlapping",
			boards, wrongSum)
	}
	// ...while energy sums across boards.
	if want := single.EnergyPJ * boards; full.EnergyPJ != want {
		t.Errorf("cluster hide=false energy %g pJ, want %g (boards x single)", full.EnergyPJ, want)
	}

	// hide=true latency: one buffer swap, orders of magnitude below the
	// full write latency.
	if hidden.LatencyPS != energy.EDRAMAccessLatencyPS {
		t.Errorf("hidden latency %d ps, want one buffer swap (%d ps)",
			hidden.LatencyPS, energy.EDRAMAccessLatencyPS)
	}
	if hidden.LatencyPS >= full.LatencyPS {
		t.Errorf("hidden latency %d ps not below full %d ps — nothing was hidden",
			hidden.LatencyPS, full.LatencyPS)
	}
}

// TestClusterReprogramAllParallelEquivalence: ReprogramAll costs must be
// bit-identical at pool widths 1/4/16 in both hide modes.
func TestClusterReprogramAllParallelEquivalence(t *testing.T) {
	t.Cleanup(func() { parallel.SetWidth(0) })
	run := func(width int, hide bool) energy.Cost {
		parallel.SetWidth(width)
		cl, netB := clusterForReprogram(t, 3)
		cost, err := cl.ReprogramAll(netB, hide)
		if err != nil {
			t.Fatal(err)
		}
		return cost
	}
	for _, hide := range []bool{false, true} {
		ref := run(1, hide)
		for _, w := range []int{4, 16} {
			if got := run(w, hide); got != ref {
				t.Errorf("hide=%v width %d cost %v != serial %v", hide, w, got, ref)
			}
		}
	}
}

// TestClusterReprogramAllStillServes: after a hidden reprogram the cluster
// serves the new weights — outputs match a fresh cluster loaded with them.
func TestClusterReprogramAllStillServes(t *testing.T) {
	cl, netB := clusterForReprogram(t, 2)
	if _, err := cl.ReprogramAll(netB, true); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewCluster(testConfig(), 2, 5, 12.5e9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Load(netB); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	inputs := make([][]float64, 6)
	for i := range inputs {
		inputs[i] = make([]float64, 48)
		for j := range inputs[i] {
			inputs[i][j] = rng.Float64()*2 - 1
		}
	}
	got, _, err := cl.InferBatch(inputs)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := fresh.InferBatch(inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("input %d output[%d] = %g, want %g", i, j, got[i][j], want[i][j])
			}
		}
	}
}
