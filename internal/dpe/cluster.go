package dpe

import (
	"fmt"

	"cimrev/internal/energy"
	"cimrev/internal/interconnect"
	"cimrev/internal/nn"
	"cimrev/internal/obs"
	"cimrev/internal/parallel"
)

// Cluster is a multi-board DPE deployment: "we consider acceptable scaling
// to existing neural networks by having multiple boards interconnected
// through standard and proprietary interconnects" (Section VI). Each board
// holds a replica of the network; batches split across boards, with inputs
// and outputs crossing photonic links from the host-attached board 0.
type Cluster struct {
	cfg     Config
	engines []*Engine
	link    *interconnect.PhotonicLink
}

// NewCluster builds a cluster of boards joined by photonic links of
// linkLenM meters carrying linkBW bytes/s.
func NewCluster(cfg Config, boards int, linkLenM, linkBW float64) (*Cluster, error) {
	if boards <= 0 {
		return nil, fmt.Errorf("dpe: cluster needs at least one board, got %d", boards)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	link, err := interconnect.NewPhotonicLink(linkLenM, linkBW)
	if err != nil {
		return nil, err
	}
	engines := make([]*Engine, boards)
	for i := range engines {
		boardCfg := cfg
		boardCfg.Seed = cfg.Seed + int64(i)
		eng, err := New(boardCfg)
		if err != nil {
			return nil, err
		}
		engines[i] = eng
	}
	return &Cluster{cfg: cfg, engines: engines, link: link}, nil
}

// Boards returns the board count.
func (c *Cluster) Boards() int { return len(c.engines) }

// Engine returns board i's engine.
func (c *Cluster) Engine(i int) (*Engine, error) {
	if i < 0 || i >= len(c.engines) {
		return nil, fmt.Errorf("dpe: board %d outside [0,%d)", i, len(c.engines))
	}
	return c.engines[i], nil
}

// Load programs every board with a replica of the network. Boards program
// in parallel: latency is the slowest board, energy sums. Each board owns
// its arrays, so the simulator fans boards across the worker pool and
// folds per-board costs in board order.
func (c *Cluster) Load(net *nn.Network) (energy.Cost, error) {
	costs := make([]energy.Cost, len(c.engines))
	err := parallel.ForErr(len(c.engines), func(i int) error {
		cost, err := c.engines[i].Load(net)
		if err != nil {
			return fmt.Errorf("dpe: load board %d: %w", i, err)
		}
		costs[i] = cost
		return nil
	})
	if err != nil {
		return energy.Zero, err
	}
	total := energy.Zero
	for _, cost := range costs {
		total = total.Par(cost)
	}
	return total, nil
}

// InferBatch distributes inputs round-robin across boards and runs each
// board's share serially; boards run in parallel — both in simulated time
// and in wall-clock time: each board is handled by one worker goroutine
// from the shared pool, which walks that board's share in index order
// (each engine numbers its inferences for counter-based noise derivation)
// and accumulates its serial cost. Inputs and outputs for boards other
// than 0 cross the photonic
// link. Per-board costs fold in board order, so the total is bit-identical
// to serial execution at any pool width.
func (c *Cluster) InferBatch(inputs [][]float64) ([][]float64, energy.Cost, error) {
	return c.InferBatchCtx(obs.Ctx{}, inputs)
}

// InferBatchCtx is InferBatch with tracing: a "cluster.infer_batch" span
// (annotated with batch size and board count) whose children are the
// per-item "dpe.infer" spans, retired by whichever board's worker ran the
// item.
func (c *Cluster) InferBatchCtx(pc obs.Ctx, inputs [][]float64) ([][]float64, energy.Cost, error) {
	sp := pc.Child("cluster.infer_batch")
	outs, cost, err := c.inferBatch(sp, inputs)
	if sp.Active() {
		sp.Annotate("batch", float64(len(inputs)))
		sp.Annotate("boards", float64(len(c.engines)))
	}
	sp.End(cost)
	return outs, cost, err
}

func (c *Cluster) inferBatch(sp obs.Ctx, inputs [][]float64) ([][]float64, energy.Cost, error) {
	if len(inputs) == 0 {
		return nil, energy.Zero, fmt.Errorf("dpe: empty batch")
	}
	outs := make([][]float64, len(inputs))
	boardCost := make([]energy.Cost, len(c.engines))
	err := parallel.ForErr(len(c.engines), func(b int) error {
		eng := c.engines[b]
		for i := b; i < len(inputs); i += len(c.engines) {
			in := inputs[i]
			out, cost, err := eng.InferCtx(sp, in)
			if err != nil {
				return fmt.Errorf("dpe: board %d input %d: %w", b, i, err)
			}
			if b != 0 {
				bytes := 8 * (len(in) + len(out))
				xfer, err := c.link.Transfer(bytes)
				if err != nil {
					return err
				}
				cost = cost.Seq(xfer)
			}
			boardCost[b] = boardCost[b].Seq(cost)
			outs[i] = out
		}
		return nil
	})
	if err != nil {
		return nil, energy.Zero, err
	}
	total := energy.Zero
	for _, bc := range boardCost {
		total = total.Par(bc)
	}
	return outs, total, nil
}

// ReprogramAll loads a new same-topology network on every board, with or
// without write-asymmetry hiding. Boards reprogram in parallel, fanned
// across the worker pool with a board-ordered cost fold.
func (c *Cluster) ReprogramAll(net *nn.Network, hide bool) (energy.Cost, error) {
	costs := make([]energy.Cost, len(c.engines))
	err := parallel.ForErr(len(c.engines), func(i int) error {
		cost, err := c.engines[i].Reprogram(net, hide)
		if err != nil {
			return fmt.Errorf("dpe: reprogram board %d: %w", i, err)
		}
		costs[i] = cost
		return nil
	})
	if err != nil {
		return energy.Zero, err
	}
	total := energy.Zero
	for _, cost := range costs {
		total = total.Par(cost)
	}
	return total, nil
}

// ScalingEfficiency returns throughput(boards)/(boards x throughput(1))
// for the given batch latencies: 1.0 is perfectly linear scaling.
func ScalingEfficiency(oneBoard, nBoards energy.Cost, boards int) float64 {
	if nBoards.LatencyPS == 0 || oneBoard.LatencyPS == 0 || boards <= 0 {
		return 0
	}
	speedup := float64(oneBoard.LatencyPS) / float64(nBoards.LatencyPS)
	return speedup / float64(boards)
}
