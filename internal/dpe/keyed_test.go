package dpe

import (
	"math/rand"
	"testing"
)

func noisyConfig() Config {
	cfg := testConfig()
	cfg.Crossbar.ReadNoise = 0.02
	return cfg
}

func noisyInputs(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	inputs := make([][]float64, n)
	for i := range inputs {
		inputs[i] = make([]float64, dim)
		for j := range inputs[i] {
			inputs[i][j] = rng.Float64()*2 - 1
		}
	}
	return inputs
}

// TestInferBatchKeyedMatchesAutoSequence: keying inference with the same
// sequence numbers the engine counter would have assigned reproduces the
// auto-sequenced outputs bit-exactly — the keyed path is the same noise
// stream, just with caller-owned positions.
func TestInferBatchKeyedMatchesAutoSequence(t *testing.T) {
	net := mlp(t, 32, 24, 10)
	inputs := noisyInputs(12, 32, 7)

	auto, err := New(noisyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := auto.Load(net); err != nil {
		t.Fatal(err)
	}
	want, _, err := auto.InferBatch(inputs) // consumes counter 0..11
	if err != nil {
		t.Fatal(err)
	}

	keyed, err := New(noisyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := keyed.Load(net); err != nil {
		t.Fatal(err)
	}
	seqs := make([]uint64, len(inputs))
	for i := range seqs {
		seqs[i] = uint64(i)
	}
	got, _, err := keyed.InferBatchKeyed(seqs, inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("input %d: keyed output differs from auto-sequenced", i)
			}
		}
	}
}

// TestInferBatchKeyedOrderInvariant: keyed outputs depend only on
// (seed, key, input), never on batch composition or submission order —
// the property fleet routing is built on.
func TestInferBatchKeyedOrderInvariant(t *testing.T) {
	net := mlp(t, 32, 24, 10)
	inputs := noisyInputs(8, 32, 7)
	e, err := New(noisyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Load(net); err != nil {
		t.Fatal(err)
	}

	seqs := []uint64{100, 101, 102, 103, 104, 105, 106, 107}
	fwd, _, err := e.InferBatchKeyed(seqs, inputs)
	if err != nil {
		t.Fatal(err)
	}
	// Same requests, reversed order, split across two batches.
	rev := make([][]float64, len(inputs))
	rseqs := make([]uint64, len(inputs))
	for i := range inputs {
		rev[i] = inputs[len(inputs)-1-i]
		rseqs[i] = seqs[len(inputs)-1-i]
	}
	half := len(rev) / 2
	out1, _, err := e.InferBatchKeyed(rseqs[:half], rev[:half])
	if err != nil {
		t.Fatal(err)
	}
	out2, _, err := e.InferBatchKeyed(rseqs[half:], rev[half:])
	if err != nil {
		t.Fatal(err)
	}
	back := append(out1, out2...)
	for i := range fwd {
		ri := len(fwd) - 1 - i
		for j := range fwd[i] {
			if fwd[i][j] != back[ri][j] {
				t.Fatalf("request seq %d: output depends on batch composition", seqs[i])
			}
		}
	}
	// The keyed path must not consume the engine's auto counter: a fresh
	// auto batch on a twin engine still starts at counter zero.
	twin, err := New(noisyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := twin.Load(net); err != nil {
		t.Fatal(err)
	}
	wantAuto, _, err := twin.InferBatch(inputs[:2])
	if err != nil {
		t.Fatal(err)
	}
	gotAuto, _, err := e.InferBatch(inputs[:2])
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantAuto {
		for j := range wantAuto[i] {
			if gotAuto[i][j] != wantAuto[i][j] {
				t.Fatalf("keyed inference advanced the auto counter (input %d)", i)
			}
		}
	}
}

// TestInferBatchKeyedValidation: key/input count mismatch is rejected.
func TestInferBatchKeyedValidation(t *testing.T) {
	net := mlp(t, 16, 8)
	e, err := New(noisyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Load(net); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.InferBatchKeyed([]uint64{1}, noisyInputs(2, 16, 3)); err == nil {
		t.Error("mismatched seqs/inputs accepted")
	}
}

// TestWearAccounting: Wear sums lifetime cell writes across stages —
// zero before Load, positive after, unchanged by inference, increased by
// reprogramming.
func TestWearAccounting(t *testing.T) {
	e, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Wear(); got != 0 {
		t.Fatalf("wear before Load = %d, want 0", got)
	}
	net := mlp(t, 32, 24, 10)
	if _, err := e.Load(net); err != nil {
		t.Fatal(err)
	}
	afterLoad := e.Wear()
	if afterLoad <= 0 {
		t.Fatalf("wear after Load = %d, want positive", afterLoad)
	}
	if _, _, err := e.InferBatch(noisyInputs(4, 32, 3)); err != nil {
		t.Fatal(err)
	}
	if got := e.Wear(); got != afterLoad {
		t.Errorf("inference changed wear: %d -> %d", afterLoad, got)
	}
	if _, err := e.Load(net); err != nil {
		t.Fatal(err)
	}
	if got := e.Wear(); got <= afterLoad {
		t.Errorf("reload did not accumulate wear: %d -> %d", afterLoad, got)
	}
}
