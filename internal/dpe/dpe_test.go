package dpe

import (
	"math"
	"math/rand"
	"testing"

	"cimrev/internal/energy"
	"cimrev/internal/nn"
	"cimrev/internal/vonneumann"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Crossbar.Rows, cfg.Crossbar.Cols = 64, 64
	return cfg
}

func mlp(t *testing.T, sizes ...int) *nn.Network {
	t.Helper()
	net, err := nn.NewMLP("mlp", sizes, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	cfg := DefaultConfig()
	cfg.ConvReplicas = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero replicas accepted")
	}
	cfg = DefaultConfig()
	cfg.Crossbar.Rows = 0
	if err := cfg.Validate(); err == nil {
		t.Error("bad crossbar accepted")
	}
}

func TestEngineLifecycle(t *testing.T) {
	e, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Infer([]float64{1}); err == nil {
		t.Error("Infer before Load accepted")
	}
	if _, err := e.Reprogram(nil, false); err == nil {
		t.Error("Reprogram before Load accepted")
	}
	if _, err := e.Load(nil); err == nil {
		t.Error("nil network accepted")
	}
}

func TestEngineInferMatchesSoftware(t *testing.T) {
	net := mlp(t, 16, 32, 4)
	e, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	pcost, err := e.Load(net)
	if err != nil {
		t.Fatal(err)
	}
	if pcost.LatencyPS == 0 {
		t.Error("zero programming cost")
	}
	if e.ProgramCost() != pcost {
		t.Error("ProgramCost mismatch")
	}

	in := make([]float64, 16)
	for i := range in {
		in[i] = math.Cos(float64(i))
	}
	got, cost, err := e.Infer(in)
	if err != nil {
		t.Fatal(err)
	}
	want, err := net.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	argmax := func(v []float64) int {
		b := 0
		for i := range v {
			if v[i] > v[b] {
				b = i
			}
		}
		return b
	}
	if argmax(got) != argmax(want) {
		t.Errorf("DPE class %d != software class %d", argmax(got), argmax(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 0.1 {
			t.Errorf("out[%d] = %g, want ~%g", i, got[i], want[i])
		}
	}
	if cost.LatencyPS <= 0 || cost.EnergyPJ <= 0 {
		t.Errorf("degenerate inference cost %v", cost)
	}
	if e.Inferences() != 1 {
		t.Errorf("Inferences = %d, want 1", e.Inferences())
	}
	if _, _, err := e.Infer([]float64{1}); err == nil {
		t.Error("wrong input length accepted")
	}
}

func TestEngineCNN(t *testing.T) {
	net, err := nn.NewLeNetStyle("cnn", 8, 32, 10, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Load(net); err != nil {
		t.Fatal(err)
	}
	in := make([]float64, 64)
	for i := range in {
		in[i] = math.Sin(float64(i) / 3)
	}
	got, cost, err := e.Infer(in)
	if err != nil {
		t.Fatal(err)
	}
	want, err := net.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("out size = %d", len(got))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 0.15 {
			t.Errorf("out[%d] = %g, want ~%g", i, got[i], want[i])
		}
	}
	if cost.LatencyPS <= 0 {
		t.Error("no latency charged for CNN")
	}
	if e.CrossbarCount() == 0 {
		t.Error("no crossbars counted")
	}
}

func TestConvReplicasSpeedup(t *testing.T) {
	// More conv replicas must cut conv latency but not energy.
	net, err := nn.NewLeNetStyle("cnn", 8, 16, 4, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	run := func(replicas int) energy.Cost {
		cfg := testConfig()
		cfg.ConvReplicas = replicas
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Load(net); err != nil {
			t.Fatal(err)
		}
		in := make([]float64, 64)
		_, cost, err := e.Infer(in)
		if err != nil {
			t.Fatal(err)
		}
		return cost
	}
	c1, c8 := run(1), run(8)
	if c8.LatencyPS >= c1.LatencyPS {
		t.Errorf("8 replicas latency %d not below 1 replica %d", c8.LatencyPS, c1.LatencyPS)
	}
	if math.Abs(c8.EnergyPJ-c1.EnergyPJ)/c1.EnergyPJ > 0.01 {
		t.Errorf("replica count changed energy: %g vs %g", c8.EnergyPJ, c1.EnergyPJ)
	}
}

func TestReprogramHiding(t *testing.T) {
	net := mlp(t, 32, 64, 8)
	e, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Load(net); err != nil {
		t.Fatal(err)
	}
	stall, err := e.Reprogram(net, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Load(net); err != nil {
		t.Fatal(err)
	}
	hidden, err := e.Reprogram(net, true)
	if err != nil {
		t.Fatal(err)
	}
	if hidden.LatencyPS >= stall.LatencyPS/100 {
		t.Errorf("hidden reprogram latency %d not << stall %d", hidden.LatencyPS, stall.LatencyPS)
	}
	if hidden.EnergyPJ != stall.EnergyPJ {
		t.Errorf("hiding changed energy: %g vs %g", hidden.EnergyPJ, stall.EnergyPJ)
	}
}

func TestWriteAsymmetryDominatesProgramming(t *testing.T) {
	net := mlp(t, 64, 64, 8)
	e, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	pcost, err := e.Load(net)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float64, 64)
	_, icost, err := e.Infer(in)
	if err != nil {
		t.Fatal(err)
	}
	if pcost.LatencyPS < 100*icost.LatencyPS {
		t.Errorf("program %d ps not >> infer %d ps", pcost.LatencyPS, icost.LatencyPS)
	}
}

func TestSectionVILatencyBandShape(t *testing.T) {
	// A large streaming layer: DPE latency must beat the CPU by 10-10^4x
	// (the Section VI band). Use a 512x512 dense layer.
	net := mlp(t, 512, 512, 10)
	e, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Load(net); err != nil {
		t.Fatal(err)
	}
	in := make([]float64, 512)
	for i := range in {
		in[i] = math.Sin(float64(i))
	}
	_, dpeCost, err := e.Infer(in)
	if err != nil {
		t.Fatal(err)
	}

	cpu := vonneumann.CPU()
	k := vonneumann.GEMV(512, 512, 4, 32<<20, false)
	cpuCost, err := cpu.Run(k)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(cpuCost.LatencyPS) / float64(dpeCost.LatencyPS)
	if ratio < 10 || ratio > 1e4 {
		t.Errorf("CPU/DPE latency ratio = %g, want within Section VI band [10, 1e4]", ratio)
	}
}

func TestEffectiveWeightBandwidth(t *testing.T) {
	// The bandwidth advantage grows with stationary weight volume; a
	// 1024x1024 layer holds ~1 MB in-array and reads it every ~1.6 us.
	net := mlp(t, 1024, 1024, 10)
	e, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Load(net); err != nil {
		t.Fatal(err)
	}
	if e.WeightBytes() != float64(net.Params()) {
		// 8-bit weights: one byte per parameter.
		t.Errorf("WeightBytes = %g, want %d", e.WeightBytes(), net.Params())
	}
	in := make([]float64, 1024)
	_, cost, err := e.Infer(in)
	if err != nil {
		t.Fatal(err)
	}
	bw := e.EffectiveWeightBandwidth(cost)
	// The Section VI claim: effective bandwidth far beyond the CPU's
	// physical memory interface.
	if bw < 10*energy.CPUMemBandwidth {
		t.Errorf("effective weight bandwidth %g not >> CPU %g", bw, float64(energy.CPUMemBandwidth))
	}
	if e.EffectiveWeightBandwidth(energy.Zero) != 0 {
		t.Error("zero-latency bandwidth should be 0")
	}
}

func TestClusterScaling(t *testing.T) {
	net := mlp(t, 128, 128, 10)
	mkBatch := func(n int) [][]float64 {
		b := make([][]float64, n)
		for i := range b {
			b[i] = make([]float64, 128)
			for j := range b[i] {
				b[i][j] = math.Sin(float64(i + j))
			}
		}
		return b
	}
	run := func(boards int) energy.Cost {
		c, err := NewCluster(testConfig(), boards, 1.0, 100e9)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Load(net); err != nil {
			t.Fatal(err)
		}
		outs, cost, err := c.InferBatch(mkBatch(16))
		if err != nil {
			t.Fatal(err)
		}
		if len(outs) != 16 {
			t.Fatalf("outputs = %d, want 16", len(outs))
		}
		return cost
	}
	c1, c4 := run(1), run(4)
	eff := ScalingEfficiency(c1, c4, 4)
	if eff < 0.5 || eff > 1.1 {
		t.Errorf("4-board scaling efficiency = %g, want near-linear [0.5, 1.1]", eff)
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(testConfig(), 0, 1, 1e9); err == nil {
		t.Error("zero boards accepted")
	}
	c, err := NewCluster(testConfig(), 2, 1, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if c.Boards() != 2 {
		t.Errorf("Boards = %d", c.Boards())
	}
	if _, err := c.Engine(5); err == nil {
		t.Error("bad board index accepted")
	}
	if _, _, err := c.InferBatch(nil); err == nil {
		t.Error("empty batch accepted")
	}
}

func TestClusterReprogramHiding(t *testing.T) {
	net := mlp(t, 64, 64, 8)
	c, err := NewCluster(testConfig(), 2, 1, 100e9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(net); err != nil {
		t.Fatal(err)
	}
	stall, err := c.ReprogramAll(net, false)
	if err != nil {
		t.Fatal(err)
	}
	hidden, err := c.ReprogramAll(net, true)
	if err != nil {
		t.Fatal(err)
	}
	if hidden.LatencyPS >= stall.LatencyPS {
		t.Errorf("hidden %d not below stall %d", hidden.LatencyPS, stall.LatencyPS)
	}
}

func TestScalingEfficiencyEdgeCases(t *testing.T) {
	if ScalingEfficiency(energy.Zero, energy.Zero, 4) != 0 {
		t.Error("zero costs should yield 0")
	}
	one := energy.Cost{LatencyPS: 100}
	four := energy.Cost{LatencyPS: 25}
	if got := ScalingEfficiency(one, four, 4); got != 1 {
		t.Errorf("perfect scaling = %g, want 1", got)
	}
}

func TestTrainedNetworkSurvivesAnalogDeployment(t *testing.T) {
	// The full deployment story: train in software, program the result
	// into crossbars, and verify classification accuracy survives the
	// 8-bit weight quantization and ADC pipeline.
	rng := rand.New(rand.NewSource(77))
	const dim, classes = 8, 3
	allIn, allLab, err := nn.MakeBlobs(360, classes, dim, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	trainIn, trainLab := allIn[:240], allLab[:240]
	testIn, testLab := allIn[240:], allLab[240:]

	net, err := nn.NewMLP("deploy", []int{dim, 16, classes}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nn.Train(net, trainIn, trainLab, 20, 0.05, rng); err != nil {
		t.Fatal(err)
	}
	swAcc, err := nn.Accuracy(net, testIn, testLab)
	if err != nil {
		t.Fatal(err)
	}
	if swAcc < 0.9 {
		t.Fatalf("software accuracy only %.2f; training failed", swAcc)
	}

	// Deploy to analog hardware — use the honest bit-serial mode.
	cfg := DefaultConfig()
	cfg.Crossbar.Functional = false
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Load(net); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, in := range testIn {
		out, _, err := eng.Infer(in)
		if err != nil {
			t.Fatal(err)
		}
		best := 0
		for j := range out {
			if out[j] > out[best] {
				best = j
			}
		}
		if best == testLab[i] {
			correct++
		}
	}
	hwAcc := float64(correct) / float64(len(testIn))
	if hwAcc < swAcc-0.05 {
		t.Errorf("analog accuracy %.2f dropped more than 5pp below software %.2f", hwAcc, swAcc)
	}
}

func TestInferBatchPipelining(t *testing.T) {
	net := mlp(t, 128, 128, 10)
	e, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Load(net); err != nil {
		t.Fatal(err)
	}
	in := make([]float64, 128)
	for i := range in {
		in[i] = math.Sin(float64(i))
	}
	_, single, err := e.Infer(in)
	if err != nil {
		t.Fatal(err)
	}

	const batch = 16
	inputs := make([][]float64, batch)
	for i := range inputs {
		inputs[i] = in
	}
	outs, cost, err := e.InferBatch(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != batch {
		t.Fatalf("outputs = %d", len(outs))
	}
	// Pipelining: batch latency well under batch x single latency.
	serial := single.LatencyPS * batch
	if cost.LatencyPS >= serial {
		t.Errorf("batch latency %d not below serial %d", cost.LatencyPS, serial)
	}
	if cost.LatencyPS <= single.LatencyPS {
		t.Errorf("batch latency %d impossibly below one inference %d", cost.LatencyPS, single.LatencyPS)
	}
	// Energy is not discounted by pipelining.
	if cost.EnergyPJ < 0.9*single.EnergyPJ*batch {
		t.Errorf("batch energy %g below %d x single %g", cost.EnergyPJ, batch, single.EnergyPJ)
	}
	// Outputs match single-inference results.
	ref, _, err := e.Infer(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if math.Abs(outs[0][i]-ref[i]) > 1e-9 {
			t.Errorf("batch output differs from single inference at %d", i)
		}
	}
}

func TestInferBatchValidation(t *testing.T) {
	e, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.InferBatch([][]float64{{1}}); err == nil {
		t.Error("batch before Load accepted")
	}
	net := mlp(t, 16, 16, 4)
	if _, err := e.Load(net); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.InferBatch(nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, _, err := e.InferBatch([][]float64{{1}}); err == nil {
		t.Error("wrong-size input accepted")
	}
}
