package cimrev

// Benchmark harness: one benchmark per paper table/figure (E1-E7 in
// DESIGN.md), plus ablation benches for the design choices the simulator
// exposes and micro-benchmarks for the hot substrates.
//
// The per-figure benchmarks report the reproduced quantities through
// b.ReportMetric (simulated-time ratios), while ns/op measures the
// simulator's own execution speed.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"cimrev/internal/cim"
	"cimrev/internal/crossbar"
	"cimrev/internal/dataflow"
	"cimrev/internal/dpe"
	"cimrev/internal/energy"
	"cimrev/internal/experiments"
	"cimrev/internal/fault"
	"cimrev/internal/nn"
	"cimrev/internal/packet"
	"cimrev/internal/resource"
	"cimrev/internal/security"
	"cimrev/internal/vonneumann"
)

// --- E1: Fig 2 ---

func BenchmarkFig2BytesPerFlop(b *testing.B) {
	var res *experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig2()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.TotalDecline, "decline_x")
	b.ReportMetric(-res.Slope, "decade_slope")
}

// --- E2: Table 1 ---

func BenchmarkTable1Comparison(b *testing.B) {
	var res *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.InMemory.MaxScale), "cim_scale_units")
	b.ReportMetric(res.InMemory.WorkLostPct, "cim_worklost_pct")
	b.ReportMetric(res.InMemory.ReachablePct, "cim_reach_pct")
}

// --- E3: Table 2 ---

func BenchmarkTable2Suitability(b *testing.B) {
	var res *experiments.Table2Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.Agreement, "agreement_pct")
}

// --- E4-E6: Section VI latency / bandwidth / power ---

// secVISweep caches the sweep across the three metric benchmarks.
func secVISweep(b *testing.B) *experiments.SecVIResult {
	b.Helper()
	res, err := experiments.SecVI([]int{512, 1024, 2048})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func BenchmarkSecVILatency(b *testing.B) {
	var res *experiments.SecVIResult
	for i := 0; i < b.N; i++ {
		res = secVISweep(b)
	}
	last := res.Rows[len(res.Rows)-1]
	b.ReportMetric(last.LatVsCPU, "lat_vs_cpu_x")
	b.ReportMetric(last.LatVsGPU, "lat_vs_gpu_x")
}

func BenchmarkSecVIBandwidth(b *testing.B) {
	var res *experiments.SecVIResult
	for i := 0; i < b.N; i++ {
		res = secVISweep(b)
	}
	last := res.Rows[len(res.Rows)-1]
	b.ReportMetric(last.BWVsCPU, "bw_vs_cpu_x")
	b.ReportMetric(last.BWVsGPU, "bw_vs_gpu_x")
}

func BenchmarkSecVIPower(b *testing.B) {
	var res *experiments.SecVIResult
	for i := 0; i < b.N; i++ {
		res = secVISweep(b)
	}
	last := res.Rows[len(res.Rows)-1]
	b.ReportMetric(last.PowVsCPU, "pow_vs_cpu_x")
	b.ReportMetric(last.PowVsCPUSingle, "pow_vs_cpu1_x")
	b.ReportMetric(last.PowVsGPU, "pow_vs_gpu_x")
}

// --- E7: Section VI scale ---

func BenchmarkSecVIScale(b *testing.B) {
	var res *experiments.ScaleResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Scale([]int{1, 4, 8}, 256, 32)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := res.Rows[len(res.Rows)-1]
	b.ReportMetric(100*last.Efficiency, "eff8_pct")
	b.ReportMetric(last.UpdateStallPct, "stall_pct")
	b.ReportMetric(last.UpdateHiddenPct, "hidden_pct")
}

// --- Ablations ---

// BenchmarkAblationADCBits sweeps ADC resolution: energy per MVM rises with
// resolution while accuracy improves (see crossbar tests for the accuracy
// side).
func BenchmarkAblationADCBits(b *testing.B) {
	for _, bits := range []int{4, 6, 8, 10} {
		b.Run(benchName("adc", bits), func(b *testing.B) {
			cfg := crossbar.DefaultConfig()
			cfg.Rows, cfg.Cols = 64, 64
			cfg.ADCBits = bits
			cfg.Functional = true
			xb, err := crossbar.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			w := randomMatrix(rng, 64, 64)
			if _, err := xb.Program(w); err != nil {
				b.Fatal(err)
			}
			in := randomVector(rng, 64)
			var cost energy.Cost
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, cost, err = xb.MVM(in, crossbar.NoNoise)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(cost.EnergyPJ, "pJ/mvm")
		})
	}
}

// BenchmarkAblationCellBits sweeps bits-per-cell: fewer bits per cell means
// more slice arrays (more parallel hardware, more energy).
func BenchmarkAblationCellBits(b *testing.B) {
	for _, bits := range []int{1, 2, 4} {
		b.Run(benchName("cell", bits), func(b *testing.B) {
			cfg := crossbar.DefaultConfig()
			cfg.Rows, cfg.Cols = 64, 64
			cfg.CellBits = bits
			cfg.Functional = true
			xb, err := crossbar.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			if _, err := xb.Program(randomMatrix(rng, 64, 64)); err != nil {
				b.Fatal(err)
			}
			in := randomVector(rng, 64)
			var cost energy.Cost
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				_, cost, err = xb.MVM(in, crossbar.NoNoise)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(cost.EnergyPJ, "pJ/mvm")
		})
	}
}

// BenchmarkAblationEncryption measures the packet-encryption overhead of
// the Section IV.A security model.
func BenchmarkAblationEncryption(b *testing.B) {
	p := &packet.Packet{
		Type:    packet.TypeData,
		Payload: randomVector(rand.New(rand.NewSource(1)), 128),
	}
	b.Run("plaintext", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.Marshal(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("aes-gcm", func(b *testing.B) {
		kr := security.NewKeyRing()
		key, err := kr.Generate(1)
		if err != nil {
			b.Fatal(err)
		}
		var cost energy.Cost
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ct, c, err := security.Seal(p, key)
			if err != nil {
				b.Fatal(err)
			}
			cost = c
			if _, _, err := security.Open(ct, key); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(cost.EnergyPJ, "pJ/seal")
	})
}

// BenchmarkAblationWriteHiding compares reprogram latency with and without
// write-asymmetry hiding.
func BenchmarkAblationWriteHiding(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d, err := nn.NewDense(256, 256, rng)
	if err != nil {
		b.Fatal(err)
	}
	net, err := nn.NewNetwork("wh", d)
	if err != nil {
		b.Fatal(err)
	}
	for _, hide := range []bool{false, true} {
		name := "stall"
		if hide {
			name = "hidden"
		}
		b.Run(name, func(b *testing.B) {
			eng, err := dpe.New(dpe.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Load(net); err != nil {
				b.Fatal(err)
			}
			var cost energy.Cost
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cost, err = eng.Reprogram(net, hide)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cost.LatencyPS)/1e6, "us_simulated")
		})
	}
}

// BenchmarkAblationRedundancy measures failover cost against spare count.
func BenchmarkAblationRedundancy(b *testing.B) {
	b.Run("with-spare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lost := runFailover(b, true)
			b.ReportMetric(lost, "worklost_pct")
		}
	})
	b.Run("no-spare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lost := runFailover(b, false)
			b.ReportMetric(lost, "worklost_pct")
		}
	})
}

func runFailover(b *testing.B, withSpare bool) float64 {
	b.Helper()
	fabric, err := NewFabric(DefaultFabricConfig(), nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	src := Address{Tile: 0}
	mid := Address{Tile: 1}
	spare := Address{Tile: 1, Unit: 1}
	sink := Address{Tile: 2}
	for _, a := range []Address{src, mid, spare, sink} {
		if _, err := fabric.AddUnit(a, cim.KindCompute, 1); err != nil {
			b.Fatal(err)
		}
	}
	if err := fabric.Connect(src, mid); err != nil {
		b.Fatal(err)
	}
	if err := fabric.Connect(mid, sink); err != nil {
		b.Fatal(err)
	}
	guard, err := fault.NewGuard(fabric, nil)
	if err != nil {
		b.Fatal(err)
	}
	if withSpare {
		if err := guard.AddSpare(mid, spare); err != nil {
			b.Fatal(err)
		}
	}
	const streams = 16
	for i := 0; i < streams; i++ {
		if err := guard.StreamHeld(src, []float64{float64(i)}); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := guard.Fail(mid); err != nil {
		b.Fatal(err)
	}
	out, err := fabric.Run()
	if err != nil {
		b.Fatal(err)
	}
	delivered := len(out[sink])
	return 100 * float64(streams-delivered) / streams
}

// --- Substrate micro-benchmarks ---

// BenchmarkCrossbarMVM is the MVM kernel's perf trajectory: a size sweep
// (64-512 rows, 8-bit weights/inputs) in bit-serial, functional, and noisy
// modes, through the zero-allocation MVMInto path. `make bench-json`
// serializes this benchmark into BENCH_mvm.json so future PRs can track
// regressions; docs/PERF.md records the history.
func BenchmarkCrossbarMVM(b *testing.B) {
	run := func(name string, cfg crossbar.Config, n int, ns NoiseSource) {
		b.Run(name, func(b *testing.B) {
			cfg.Rows, cfg.Cols = n, n
			xb, err := crossbar.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			if _, err := xb.Program(randomMatrix(rng, n, n)); err != nil {
				b.Fatal(err)
			}
			in := randomVector(rng, n)
			dst := make([]float64, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := xb.MVMInto(dst, in, ns); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, n := range []int{64, 128, 256, 512} {
		base := crossbar.DefaultConfig() // 8b weights, 8b inputs
		run(fmt.Sprintf("%dx%d_8b", n, n), base, n, NoNoise)

		fn := base
		fn.Functional = true
		run(fmt.Sprintf("%dx%d_8b_func", n, n), fn, n, NoNoise)

		noisy := base
		noisy.ReadNoise = 0.02
		run(fmt.Sprintf("%dx%d_8b_noisy", n, n), noisy, n, NewNoiseSource(7))
	}
}

// BenchmarkCrossbarMVMBatch is the GEMM-path trajectory: the batched
// multi-vector kernel (MVMBatchInto) over a size × batch sweep, in
// bit-serial, functional, and noisy (per-item keyed sources) modes. Each
// iteration times the looped MVMInto baseline and the batched kernel
// back to back on the same inputs, so the reported "speedup" metric
// compares the two paths under identical host conditions — immune to the
// CPU-frequency drift that makes cross-benchmark ratios unreliable.
// "ns/vec" is the batched kernel's per-vector time; "looped-ns/vec" the
// baseline's. `make bench-mvm` archives this sweep next to the
// single-vector one in BENCH_mvm.json and gates the deterministic modes
// at batch ≥ 8 and panel ≥ 256 on speedup ≥ 1.5× (see cmd/benchjson
// -gate-batch-speedup; noisy and sub-256 results are structural
// exemptions, docs/PERF.md).
func BenchmarkCrossbarMVMBatch(b *testing.B) {
	run := func(name string, cfg crossbar.Config, n, batch int, noisy bool) {
		b.Run(name, func(b *testing.B) {
			cfg.Rows, cfg.Cols = n, n
			xb, err := crossbar.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			if _, err := xb.Program(randomMatrix(rng, n, n)); err != nil {
				b.Fatal(err)
			}
			ins := make([][]float64, batch)
			dsts := make([][]float64, batch)
			slab := make([]float64, batch*n)
			var nss []NoiseSource
			if noisy {
				root := NewNoiseSource(7)
				nss = make([]NoiseSource, batch)
				for i := range nss {
					nss[i] = root.Derive(uint64(i))
				}
			}
			for i := range ins {
				ins[i] = randomVector(rng, n)
				dsts[i] = slab[i*n : (i+1)*n]
			}
			// Warm the scratch pool outside the timed region so the
			// archived allocs/op reflect steady state (0), not the
			// one-time pool fill.
			if _, err := xb.MVMBatchInto(dsts, ins, nss); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var loopNS, batchNS int64
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				for j := range ins {
					ns := NoNoise
					if nss != nil {
						ns = nss[j]
					}
					if _, err := xb.MVMInto(dsts[j], ins[j], ns); err != nil {
						b.Fatal(err)
					}
				}
				t1 := time.Now()
				if _, err := xb.MVMBatchInto(dsts, ins, nss); err != nil {
					b.Fatal(err)
				}
				batchNS += time.Since(t1).Nanoseconds()
				loopNS += t1.Sub(t0).Nanoseconds()
			}
			b.StopTimer() // keep ReportMetric's map work out of allocs/op
			// Per-vector time is what the batch amortizes; report both paths
			// so the archived sweep carries its own like-for-like baseline.
			b.ReportMetric(float64(batchNS)/float64(b.N)/float64(batch), "ns/vec")
			b.ReportMetric(float64(loopNS)/float64(b.N)/float64(batch), "looped-ns/vec")
			if batchNS > 0 {
				b.ReportMetric(float64(loopNS)/float64(batchNS), "speedup")
			}
		})
	}
	for _, n := range []int{64, 128, 256, 512} {
		for _, batch := range []int{1, 8, 32, 128} {
			base := crossbar.DefaultConfig() // 8b weights, 8b inputs
			run(fmt.Sprintf("%dx%d_8b_b%d", n, n, batch), base, n, batch, false)

			fn := base
			fn.Functional = true
			run(fmt.Sprintf("%dx%d_8b_func_b%d", n, n, batch), fn, n, batch, false)

			noisy := base
			noisy.ReadNoise = 0.02
			run(fmt.Sprintf("%dx%d_8b_noisy_b%d", n, n, batch), noisy, n, batch, true)
		}
	}
}

// BenchmarkEngineInferBatch tracks the DPE-level batch win — the full
// stage pipeline (quantize, tile dispatch, bias, digital stages) on the
// GEMM path, not just the raw kernel — with allocations reported.
func BenchmarkEngineInferBatch(b *testing.B) {
	for _, batch := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("mlp256_b%d", batch), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			net, err := nn.NewMLP("bench", []int{256, 256, 10}, rng)
			if err != nil {
				b.Fatal(err)
			}
			eng, err := dpe.New(dpe.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Load(net); err != nil {
				b.Fatal(err)
			}
			inputs := make([][]float64, batch)
			for i := range inputs {
				inputs[i] = randomVector(rng, 256)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := eng.InferBatch(inputs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(batch), "ns/vec")
		})
	}
}

func BenchmarkDPEInference(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net, err := nn.NewMLP("bench", []int{256, 256, 10}, rng)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := dpe.New(dpe.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.Load(net); err != nil {
		b.Fatal(err)
	}
	in := randomVector(rng, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.Infer(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDataflowPipeline(b *testing.B) {
	g := dataflow.NewGraph()
	prev := dataflow.NodeID(-1)
	var first dataflow.NodeID
	for i := 0; i < 8; i++ {
		id, err := g.AddNode("n", packet.Address{Unit: uint16(i)}, dataflow.ReLU())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			first = id
		} else if err := g.Connect(prev, id); err != nil {
			b.Fatal(err)
		}
		prev = id
	}
	eng, err := dataflow.NewEngine(g, nil)
	if err != nil {
		b.Fatal(err)
	}
	in := randomVector(rand.New(rand.NewSource(1)), 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Inject(first, in); err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPacketMarshal(b *testing.B) {
	p := &packet.Packet{
		Type:    packet.TypeData,
		Payload: randomVector(rand.New(rand.NewSource(1)), 64),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := p.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := packet.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCacheHierarchy(b *testing.B) {
	h, err := vonneumann.NewHierarchy(vonneumann.DefaultHierarchy())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(uint64(i*64) % (64 << 20))
	}
}

// --- helpers ---

func benchName(prefix string, v int) string {
	return fmt.Sprintf("%s-%d", prefix, v)
}

func randomMatrix(rng *rand.Rand, m, n int) [][]float64 {
	w := make([][]float64, m)
	for r := range w {
		w[r] = make([]float64, n)
		for c := range w[r] {
			w[r][c] = rng.Float64()*2 - 1
		}
	}
	return w
}

func randomVector(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()*2 - 1
	}
	return v
}

// BenchmarkAblationDynamicRouting compares static placement (every stream
// pinned to one unit) against dynamic load balancing under skewed demand.
// The reported metric is the bottleneck unit's utilization — the completion
// -time proxy for the fabric.
func BenchmarkAblationDynamicRouting(b *testing.B) {
	units := []packet.Address{{Tile: 0}, {Tile: 1}, {Tile: 2}, {Tile: 3}}
	setup := func(b *testing.B, balance bool) float64 {
		b.Helper()
		bal, err := resource.NewBalancer(units, 1000, nil)
		if err != nil {
			b.Fatal(err)
		}
		// Skewed offered load: stream rates follow a rough power law.
		for i := uint32(0); i < 40; i++ {
			rate := 100.0 / float64(1+i%7)
			if _, err := bal.Assign(i, rate); err != nil {
				b.Fatal(err)
			}
			if !balance {
				if err := bal.Pin(i, units[0]); err != nil {
					b.Fatal(err)
				}
			}
		}
		if balance {
			bal.Rebalance()
		}
		return bal.Loads()[0].Utilization()
	}
	b.Run("static", func(b *testing.B) {
		var u float64
		for i := 0; i < b.N; i++ {
			u = setup(b, false)
		}
		b.ReportMetric(u, "bottleneck_util")
	})
	b.Run("dynamic", func(b *testing.B) {
		var u float64
		for i := 0; i < b.N; i++ {
			u = setup(b, true)
		}
		b.ReportMetric(u, "bottleneck_util")
	})
}

// BenchmarkAssociativeSearch measures TCAM longest-prefix match and
// associative row-parallel arithmetic.
func BenchmarkAssociativeSearch(b *testing.B) {
	tc, err := NewTCAM(256, 32, nil)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for r := 0; r < 256; r++ {
		prefix := uint64(rng.Uint32())
		bits := 8 + rng.Intn(24)
		mask := (^uint64(0) << (32 - bits)) & 0xFFFFFFFF
		if err := tc.Store(r, prefix&mask, mask); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.LongestPrefixMatch(uint64(rng.Uint32()))
	}
}

func BenchmarkAssociativeAdd(b *testing.B) {
	ap, err := NewAssociativeProcessor(1024, 32, nil)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for r := 0; r < 1024; r++ {
		if err := ap.Write(r, uint64(rng.Uint32())); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ap.AddConstant(uint64(i))
	}
}

// BenchmarkDPEBatchPipelined reports the pipelined throughput advantage.
func BenchmarkDPEBatchPipelined(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net, err := nn.NewMLP("bench", []int{128, 128, 10}, rng)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := dpe.New(dpe.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.Load(net); err != nil {
		b.Fatal(err)
	}
	inputs := make([][]float64, 32)
	for i := range inputs {
		inputs[i] = randomVector(rng, 128)
	}
	var batchCost energy.Cost
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		_, batchCost, err = eng.InferBatch(inputs)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(batchCost.LatencyPS)/float64(len(inputs))/1000, "ns_sim_per_inf")
}
