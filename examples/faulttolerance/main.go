// Fault tolerance (Section V.A): a CIM pipeline survives a unit failure by
// stream redirection to a redundant unit, held-data replay recovers work
// in flight, and checksum "extra bits" catch silent corruption at a
// component boundary.
package main

import (
	"fmt"
	"log"

	"cimrev"
	"cimrev/internal/cim"
	"cimrev/internal/fault"
	"cimrev/internal/isa"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	reg := cimrev.NewRegistry()
	fabric, err := cimrev.NewFabric(cimrev.DefaultFabricConfig(), cimrev.NewLedger(), reg)
	if err != nil {
		return err
	}

	// Pipeline: ingest -> filter (ReLU) -> aggregate, plus a hot spare
	// for the filter stage.
	var (
		ingest = cimrev.Address{Tile: 0}
		filter = cimrev.Address{Tile: 1}
		spare  = cimrev.Address{Tile: 1, Unit: 1}
		sink   = cimrev.Address{Tile: 2}
	)
	for _, a := range []cimrev.Address{ingest, filter, spare, sink} {
		if _, err := fabric.AddUnit(a, cim.KindCompute, 1); err != nil {
			return err
		}
	}
	if err := fabric.Configure(filter, isa.FuncReLU, nil); err != nil {
		return err
	}
	if err := fabric.Configure(spare, isa.FuncReLU, nil); err != nil {
		return err
	}
	if err := fabric.Configure(sink, isa.FuncAccumulate, nil); err != nil {
		return err
	}
	if err := fabric.Connect(ingest, filter); err != nil {
		return err
	}
	if err := fabric.Connect(filter, sink); err != nil {
		return err
	}

	guard, err := cimrev.NewGuard(fabric, reg)
	if err != nil {
		return err
	}
	if err := guard.AddSpare(filter, spare); err != nil {
		return err
	}

	// Normal operation.
	for i := 0; i < 4; i++ {
		if err := guard.StreamHeld(ingest, []float64{float64(i) - 1.5}); err != nil {
			return err
		}
	}
	out, err := fabric.Run()
	if err != nil {
		return err
	}
	fmt.Printf("healthy run: %d results at sink, accumulated %v\n",
		len(out[sink]), last(out[sink]))
	guard.Ack(ingest)

	// Detection: a bit flip in a sealed payload is caught at the boundary.
	sealed := fault.Seal([]float64{1.0, 2.0, 3.0})
	if err := fault.FlipBit(sealed, 1, 23); err != nil {
		return err
	}
	if _, err := fault.Open(sealed); err != nil {
		fmt.Printf("detection: corrupted packet rejected (%v)\n", err)
	} else {
		return fmt.Errorf("corruption went undetected")
	}

	// Failure + recovery: kill the filter mid-stream; the spare takes
	// over and the redirected stream still completes.
	for i := 0; i < 4; i++ {
		if err := guard.StreamHeld(ingest, []float64{float64(i) + 10}); err != nil {
			return err
		}
	}
	recovered, err := guard.Fail(filter)
	if err != nil {
		return err
	}
	fmt.Printf("failure injected at %v; recovered via spare: %v\n", filter, recovered)
	out, err = fabric.Run()
	if err != nil {
		return err
	}
	fmt.Printf("post-failover run: %d/%d results delivered through the spare\n",
		len(out[sink]), 4)

	snap := reg.Snapshot()
	fmt.Printf("\nmetrics: %d faults injected, %d recovered, %d units failed\n",
		snap.Counters["fault.injected"], snap.Counters["fault.recovered"],
		snap.Counters["fabric.failures"])
	fmt.Println("\nTable 1 row confirmed: in-memory failure tolerance = \"stream")
	fmt.Println("redirection to redundant unit\" — zero work lost.")
	return nil
}

func last(results [][]float64) []float64 {
	if len(results) == 0 {
		return nil
	}
	return results[len(results)-1]
}
