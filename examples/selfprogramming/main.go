// Self-programmable dataflow (Section III.B): packets carry code that
// reprograms CIM units as they arrive — "the highest level of flexibility
// in programming". The example reconfigures a unit from pass-through to a
// crossbar MVM entirely via a program packet, then shows the security
// inspector (Section IV.A) refusing the same packet under a strict policy.
package main

import (
	"fmt"
	"log"

	"cimrev"
	"cimrev/internal/cim"
	"cimrev/internal/isa"
	"cimrev/internal/packet"
	"cimrev/internal/security"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fabric, err := cimrev.NewFabric(cimrev.DefaultFabricConfig(), cimrev.NewLedger(), nil)
	if err != nil {
		return err
	}
	unit := cimrev.Address{Tile: 0}
	if _, err := fabric.AddUnit(unit, cim.KindCrossbar, 4); err != nil {
		return err
	}

	// The program travels inside the packet: load weights, become an MVM
	// unit, process a first input.
	prog := isa.Program{
		{Op: isa.OpLoadWeights, Unit: unit, Rows: 3, Cols: 2,
			Data: []float64{1, 0, 0, 1, 0.5, -0.5}},
		{Op: isa.OpConfigure, Unit: unit, Fn: isa.FuncMVM},
		{Op: isa.OpStream, Unit: unit, Data: []float64{1, -1, 0.5}},
		{Op: isa.OpHalt},
	}
	fmt.Println("program carried by the packet:")
	fmt.Print(prog.Disassemble())

	code, err := prog.Encode()
	if err != nil {
		return err
	}
	p := &packet.Packet{Dst: unit, Type: packet.TypeProgram, Code: code}
	fmt.Printf("\npacket: %d bytes (%d of them code)\n", p.SizeBytes(), len(p.Code))

	// Ingress inspection, permissive partition: programs allowed.
	permissive := security.NewInspector(security.Policy{AllowPrograms: true})
	if err := permissive.Inspect(p); err != nil {
		return err
	}
	if err := fabric.InjectPacket(p); err != nil {
		return err
	}
	out, err := fabric.Run()
	if err != nil {
		return err
	}
	fmt.Printf("unit reprogrammed in flight; first MVM result: %v\n", firstResult(out[unit]))

	// Subsequent data packets use the new configuration.
	if err := fabric.Stream(unit, []float64{0.5, 0.5, 1.0}); err != nil {
		return err
	}
	out, err = fabric.Run()
	if err != nil {
		return err
	}
	fmt.Printf("follow-up data through the reprogrammed unit: %v\n", firstResult(out[unit]))

	// The same packet at a strict boundary: rejected before it can touch
	// the fabric ("data can be inspected prior ... to entering").
	strict := security.NewInspector(security.Policy{})
	if err := strict.Inspect(p); err != nil {
		fmt.Printf("\nstrict partition boundary: %v\n", err)
	} else {
		return fmt.Errorf("strict inspector admitted a program packet")
	}
	return nil
}

func firstResult(results [][]float64) []float64 {
	if len(results) == 0 {
		return nil
	}
	return results[0]
}
