// Training and deployment (Section III.B): train a classifier in software,
// program the trained weights into memristor crossbars, and verify that
// classification accuracy survives the analog pipeline — then retrain and
// hot-swap the model with write-asymmetry hiding.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cimrev"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(2024))
	const dim, classes = 12, 4

	// Synthetic sensor-signature dataset, split train/test.
	allIn, allLab, err := cimrev.MakeBlobs(480, classes, dim, 0.3, rng)
	if err != nil {
		return err
	}
	trainIn, trainLab := allIn[:320], allLab[:320]
	testIn, testLab := allIn[320:], allLab[320:]

	net, err := cimrev.NewMLP("classifier", []int{dim, 24, classes}, rng)
	if err != nil {
		return err
	}
	before, err := cimrev.Accuracy(net, testIn, testLab)
	if err != nil {
		return err
	}
	loss, err := cimrev.Train(net, trainIn, trainLab, 25, 0.05, rng)
	if err != nil {
		return err
	}
	after, err := cimrev.Accuracy(net, testIn, testLab)
	if err != nil {
		return err
	}
	fmt.Printf("training: accuracy %.2f -> %.2f (final loss %.3f)\n", before, after, loss)

	// Deploy to the DPE with the honest bit-serial analog pipeline.
	cfg := cimrev.DefaultDPEConfig()
	cfg.Crossbar.Functional = false
	engine, err := cimrev.NewDPE(cfg)
	if err != nil {
		return err
	}
	programCost, err := engine.Load(net)
	if err != nil {
		return err
	}
	fmt.Printf("deployed to %d crossbars in %v\n", engine.CrossbarCount(), programCost)

	correct := 0
	var inferCost cimrev.Cost
	for i, in := range testIn {
		out, cost, err := engine.Infer(in)
		if err != nil {
			return err
		}
		inferCost = inferCost.Seq(cost)
		if argmax(out) == testLab[i] {
			correct++
		}
	}
	hwAcc := float64(correct) / float64(len(testIn))
	fmt.Printf("analog accuracy: %.2f (software %.2f) over %d inferences in %v\n",
		hwAcc, after, len(testIn), inferCost)

	// Model update in production: retrain briefly, then hot-swap.
	if _, err := cimrev.Train(net, trainIn, trainLab, 5, 0.02, rng); err != nil {
		return err
	}
	stall, err := engine.Reprogram(net, false)
	if err != nil {
		return err
	}
	hidden, err := engine.Reprogram(net, true)
	if err != nil {
		return err
	}
	fmt.Printf("\nmodel update: %v stalled vs %v with write hiding (%.0fx less downtime)\n",
		stall, hidden, float64(stall.LatencyPS)/float64(hidden.LatencyPS))
	return nil
}

func argmax(v []float64) int {
	best := 0
	for i := range v {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}
