// Graph analytics (Section II.B memory-centric computing): PageRank over a
// preferential-attachment graph, executed two ways — as iterated
// matrix-vector products on Dot Product Engine crossbars (the graph's
// transition matrix is stationary in the arrays) and as classic software on
// the CPU model. The ranking must agree; the costs diverge.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"cimrev"
	"cimrev/internal/graph"
	"cimrev/internal/vonneumann"
)

const (
	nodes      = 96
	outDegree  = 4
	damping    = 0.85
	iterations = 25
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(11))
	g, err := graph.RandomPreferential(nodes, outDegree, rng)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d nodes, %d edges\n", g.Nodes(), g.EdgesCount())

	// Software reference.
	swRank, flops, err := g.PageRank(damping, iterations)
	if err != nil {
		return err
	}

	// CIM execution: the damped transition matrix lives in crossbars;
	// each iteration is one MVM.
	m, err := g.TransitionMatrix(damping)
	if err != nil {
		return err
	}
	tile, err := cimrev.NewCrossbarTile(functionalCrossbar())
	if err != nil {
		return err
	}
	programCost, err := tile.Program(m)
	if err != nil {
		return err
	}

	rank := make([]float64, nodes)
	for i := range rank {
		rank[i] = 1.0 / nodes
	}
	total := cimrev.Cost{}
	for it := 0; it < iterations; it++ {
		next, cost, err := tile.MVM(rank, cimrev.NoNoise)
		if err != nil {
			return err
		}
		total = total.Seq(cost)
		// Renormalize to absorb analog quantization drift.
		var sum float64
		for _, v := range next {
			sum += v
		}
		for i := range next {
			next[i] /= sum
		}
		rank = next
	}

	// Rankings agree?
	swTop := topK(swRank, 5)
	cimTop := topK(rank, 5)
	fmt.Printf("top-5 (software): %v\n", swTop)
	fmt.Printf("top-5 (CIM):      %v\n", cimTop)
	overlap := 0
	for _, a := range swTop {
		for _, b := range cimTop {
			if a == b {
				overlap++
			}
		}
	}
	fmt.Printf("top-5 overlap: %d/5, L1 distance %.4f\n",
		overlap, graph.L1Distance(swRank, rank))

	// Cost comparison: CPU streams the matrix every iteration; the DPE
	// keeps it stationary.
	cpu := cimrev.CPU()
	cpuCost, err := cpu.Run(vonneumann.Kernel{
		Name:  "pagerank",
		Flops: flops,
		Bytes: float64(iterations) * float64(nodes*nodes) * 8,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nCIM: program %v, %d iterations in %v\n", programCost, iterations, total)
	fmt.Printf("CPU: %v\n", cpuCost)
	fmt.Printf("iteration speedup: %.1fx, energy: %.1fx\n",
		float64(cpuCost.LatencyPS)/float64(total.LatencyPS),
		cpuCost.EnergyPJ/total.EnergyPJ)
	fmt.Println("\n(the write-asymmetry caveat: programming the matrix costs more than")
	fmt.Println(" many iterations of reading it — stationary graphs amortize, churning")
	fmt.Println(" graphs do not)")
	return nil
}

func functionalCrossbar() cimrev.CrossbarConfig {
	cfg := cimrev.DefaultCrossbarConfig()
	cfg.Functional = true
	return cfg
}

func topK(rank []float64, k int) []int {
	idx := make([]int, len(rank))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return rank[idx[a]] > rank[idx[b]] })
	return idx[:k]
}
