// Quickstart: build a Dot Product Engine, load a small MLP into its
// memristor crossbars, run an inference, and compare the cost against the
// CPU and GPU baselines — the Section VI experiment in miniature.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"cimrev"
	"cimrev/internal/vonneumann"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(42))

	// A 256-128-10 classifier, weights held stationary in the arrays.
	net, err := cimrev.NewMLP("quickstart", []int{256, 128, 10}, rng)
	if err != nil {
		return err
	}

	engine, err := cimrev.NewDPE(cimrev.DefaultDPEConfig())
	if err != nil {
		return err
	}
	programCost, err := engine.Load(net)
	if err != nil {
		return err
	}
	fmt.Printf("loaded %q: %d params in %d crossbars, programmed in %v\n",
		net.Name, net.Params(), engine.CrossbarCount(), programCost)

	// One inference through the analog pipeline.
	input := make([]float64, net.InSize())
	for i := range input {
		input[i] = math.Sin(float64(i) / 10)
	}
	out, inferCost, err := engine.Infer(input)
	if err != nil {
		return err
	}
	best := 0
	for i := range out {
		if out[i] > out[best] {
			best = i
		}
	}
	fmt.Printf("inference: class %d (p=%.3f) in %v\n", best, out[best], inferCost)

	// Accuracy check against the software reference.
	ref, err := net.Forward(input)
	if err != nil {
		return err
	}
	var maxErr float64
	for i := range ref {
		if d := math.Abs(out[i] - ref[i]); d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("max deviation from float32 software reference: %.4f\n", maxErr)

	// The same work on the Von Neumann baselines.
	cpu := cimrev.CPU()
	k := vonneumann.GEMV(256, 128, 4, 32<<20, false)
	cpuCost, err := cpu.Run(k)
	if err != nil {
		return err
	}
	gpuCost, err := cimrev.GPU().Run(k)
	if err != nil {
		return err
	}
	fmt.Printf("\n%-8s %14s %14s\n", "engine", "latency", "energy")
	fmt.Printf("%-8s %14v %14v\n", "DPE", inferCost, "")
	fmt.Printf("%-8s %14v\n", "CPU", cpuCost)
	fmt.Printf("%-8s %14v\n", "GPU", gpuCost)
	fmt.Printf("\nDPE vs CPU: %.0fx latency, %.0fx energy\n",
		float64(cpuCost.LatencyPS)/float64(inferCost.LatencyPS),
		cpuCost.EnergyPJ/inferCost.EnergyPJ)
	return nil
}
