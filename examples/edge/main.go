// Edge computing (Section II.B): a battery-powered sensor runs deep
// learning inference at the edge, converting raw camera frames into tagged
// metadata — "massively reducing the size to something that can be
// efficiently transferred to the cloud" — inside a strict power budget.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"cimrev"
	"cimrev/internal/vonneumann"
)

const (
	frameSide  = 16 // 16x16 grayscale frames
	classes    = 8
	frameCount = 64
	// powerBudgetW is the device's inference power envelope.
	powerBudgetW = 0.5
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(7))

	// A small CNN classifier living permanently in the sensor's crossbars.
	net, err := cimrev.NewLeNetStyle("edge-classifier", frameSide, 64, classes, rng)
	if err != nil {
		return err
	}
	engine, err := cimrev.NewDPE(cimrev.DefaultDPEConfig())
	if err != nil {
		return err
	}
	if _, err := engine.Load(net); err != nil {
		return err
	}
	fmt.Printf("edge classifier: %d params in %d crossbar arrays\n",
		net.Params(), engine.CrossbarCount())

	// Stream synthetic camera frames through the classifier.
	var (
		total     cimrev.Cost
		rawBytes  int
		tagBytes  int
		histogram = make([]int, classes)
	)
	for f := 0; f < frameCount; f++ {
		frame := syntheticFrame(rng, f)
		out, cost, err := engine.Infer(frame)
		if err != nil {
			return fmt.Errorf("frame %d: %w", f, err)
		}
		total = total.Seq(cost)
		best := argmax(out)
		histogram[best]++
		rawBytes += len(frame) // 1 byte/pixel on the wire
		tagBytes += 1 + 2      // class tag + confidence
	}

	fmt.Printf("\nprocessed %d frames in %v\n", frameCount, total)
	fmt.Printf("class histogram: %v\n", histogram)
	fmt.Printf("uplink reduction: %d B raw -> %d B metadata (%.0fx smaller)\n",
		rawBytes, tagBytes, float64(rawBytes)/float64(tagBytes))

	// Average inference power against the battery budget.
	power := total.Power()
	fmt.Printf("average inference power: %.4f W (budget %.2f W)", power, powerBudgetW)
	if power <= powerBudgetW {
		fmt.Println(" — within budget")
	} else {
		fmt.Println(" — OVER BUDGET")
	}

	// The same pipeline on a server CPU for contrast.
	cpu := cimrev.CPU()
	cpuCost, err := cpu.Run(edgeKernel(net.Flops(), net.WeightBytes(4)))
	if err != nil {
		return err
	}
	perFrame := cpuCost.Scale(int64(frameCount))
	fmt.Printf("\nCPU alternative: %v for the same frames (%.0fx more energy)\n",
		perFrame, perFrame.EnergyPJ/total.EnergyPJ)
	return nil
}

func edgeKernel(flops, weightBytes float64) vonneumann.Kernel {
	return vonneumann.Kernel{
		Name:  "edge-cnn",
		Flops: flops,
		Bytes: weightBytes + 2*frameSide*frameSide,
	}
}

func syntheticFrame(rng *rand.Rand, seed int) []float64 {
	frame := make([]float64, frameSide*frameSide)
	// A blob whose position depends on the frame index, plus noise.
	cx := float64(seed % frameSide)
	cy := float64((seed / 2) % frameSide)
	for y := 0; y < frameSide; y++ {
		for x := 0; x < frameSide; x++ {
			d := math.Hypot(float64(x)-cx, float64(y)-cy)
			frame[y*frameSide+x] = math.Exp(-d/3) + rng.NormFloat64()*0.05
		}
	}
	return frame
}

func argmax(v []float64) int {
	best := 0
	for i := range v {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}
