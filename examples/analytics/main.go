// In-memory analytics (Table 2 "Data Bases (analytics)" — rated high):
// bitmap-index queries computed inside a ReRAM array (Chen et al.'s
// bulk bitwise AND/OR/XOR) plus TCAM classification, against the cost of a
// CPU scanning the same table from DRAM.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cimrev"
	"cimrev/internal/memristor"
	"cimrev/internal/vonneumann"
)

const (
	events = 4096 // rows in the event table
	words  = events / 64
)

// Bitmap rows in the engine: one bitmap per predicate.
const (
	rowIsError = iota
	rowIsEdge
	rowLastHour
	rowScratch1
	rowScratch2
	rowCount
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(99))
	ledger := cimrev.NewLedger()

	eng, err := memristor.NewBitwiseEngine(rowCount, words, ledger)
	if err != nil {
		return err
	}

	// Synthesize the event table's bitmap indexes.
	isError := randomBitmap(rng, 0.05)
	isEdge := randomBitmap(rng, 0.4)
	lastHour := randomBitmap(rng, 0.25)
	if err := eng.Store(rowIsError, isError); err != nil {
		return err
	}
	if err := eng.Store(rowIsEdge, isEdge); err != nil {
		return err
	}
	if err := eng.Store(rowLastHour, lastHour); err != nil {
		return err
	}

	// Query: COUNT(*) WHERE (error AND edge) OR NOT(lastHour)... keep it
	// to pure AND/OR: errors on edge devices in the last hour.
	if err := eng.And(rowIsError, rowIsEdge, rowScratch1); err != nil {
		return err
	}
	if err := eng.And(rowScratch1, rowLastHour, rowScratch2); err != nil {
		return err
	}
	hits, err := eng.PopCount(rowScratch2)
	if err != nil {
		return err
	}
	cimCost := ledger.Total()
	fmt.Printf("in-array query over %d events: %d hits in %v\n", events, hits, cimCost)

	// The same query as a CPU scan: stream three bitmaps from DRAM and
	// combine them.
	cpu := cimrev.CPU()
	scanBytes := float64(3 * words * 8)
	cpuCost, err := cpu.Run(vonneumann.Kernel{
		Name:  "bitmap-scan",
		Flops: float64(2 * events), // two logic ops per row
		Bytes: scanBytes,
	})
	if err != nil {
		return err
	}
	fmt.Printf("CPU bitmap scan:  %v (%.0fx energy)\n",
		cpuCost, cpuCost.EnergyPJ/cimCost.EnergyPJ)

	// Verify against a software evaluation of the same predicate.
	want := 0
	for w := 0; w < words; w++ {
		v := isError[w] & isEdge[w] & lastHour[w]
		for ; v != 0; v &= v - 1 {
			want++
		}
	}
	fmt.Printf("verification: software count = %d, in-array count = %d\n", want, hits)

	// Classification stage: route each hit's source prefix through a TCAM
	// (the associative half of the Section III.A taxonomy).
	tcam, err := cimrev.NewTCAM(4, 16, ledger)
	if err != nil {
		return err
	}
	// Routing table: site prefixes at /4, /8, and a default route.
	if err := tcam.Store(0, 0xA000, 0xF000); err != nil { // site A
		return err
	}
	if err := tcam.Store(1, 0xAB00, 0xFF00); err != nil { // rack AB
		return err
	}
	if err := tcam.Store(2, 0x0000, 0x0000); err != nil { // default
		return err
	}
	for _, src := range []uint64{0xAB42, 0xA777, 0x1234} {
		route, cost := tcam.LongestPrefixMatch(src)
		fmt.Printf("TCAM route for source %#04x -> table entry %d (%v)\n", src, route, cost)
	}

	fmt.Printf("\ntotal in-memory cost: %v\n", ledger.Total())
	return nil
}

func randomBitmap(rng *rand.Rand, density float64) []uint64 {
	out := make([]uint64, words)
	for w := range out {
		for b := 0; b < 64; b++ {
			if rng.Float64() < density {
				out[w] |= 1 << b
			}
		}
	}
	return out
}
