module cimrev

go 1.22
