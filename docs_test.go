package cimrev

// Documentation cross-reference check (make docs-check, part of make
// verify): README.md and DESIGN.md are the two entry points into docs/,
// so every docs/*.md they reference must exist, and every file in docs/
// must be reachable from at least one of them. This keeps the system map
// honest — a document cannot be deleted while still linked, and a new
// document cannot land orphaned.

import (
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

var docsRefRe = regexp.MustCompile(`docs/[A-Za-z0-9_.-]+\.md`)

func TestDocsCrossReferences(t *testing.T) {
	entryPoints := []string{"README.md", "DESIGN.md"}
	referenced := map[string][]string{} // docs/X.md -> entry points naming it
	for _, entry := range entryPoints {
		data, err := os.ReadFile(entry)
		if err != nil {
			t.Fatalf("reading %s: %v", entry, err)
		}
		for _, ref := range docsRefRe.FindAllString(string(data), -1) {
			referenced[ref] = append(referenced[ref], entry)
		}
	}
	if len(referenced) == 0 {
		t.Fatal("no docs/*.md references found in README.md or DESIGN.md")
	}

	// Every reference must resolve to a real file.
	for ref, from := range referenced {
		if _, err := os.Stat(ref); err != nil {
			t.Errorf("%v reference %s: %v", from, ref, err)
		}
	}

	// Every document must be referenced — no orphans.
	files, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("docs/ contains no markdown files")
	}
	for _, f := range files {
		if _, ok := referenced[filepath.ToSlash(f)]; !ok {
			t.Errorf("%s is orphaned: not referenced from README.md or DESIGN.md", f)
		}
	}
}
