package cimrev

// Cross-subsystem integration tests: whole-system scenarios that thread
// multiple packages together the way a deployment would.

import (
	"math"
	"math/rand"
	"testing"

	"cimrev/internal/cim"
	"cimrev/internal/fault"
	"cimrev/internal/isa"
	"cimrev/internal/memristor"
	"cimrev/internal/security"
	"cimrev/internal/service"
	"cimrev/internal/virt"
)

// TestIntegrationTenantIsolationWithQoS runs two tenants on one fabric:
// partitioned pipelines, a bandwidth reservation for the paying tenant,
// and a check that isolation blocks cross-tenant traffic while both
// pipelines still compute correctly.
func TestIntegrationTenantIsolationWithQoS(t *testing.T) {
	reg := NewRegistry()
	ledger := NewLedger()
	fabric, err := NewFabric(DefaultFabricConfig(), ledger, reg)
	if err != nil {
		t.Fatal(err)
	}

	// Tenant A: tiles 0-1; tenant B: tiles 2-3. Each runs src -> relu.
	type tenant struct {
		src, fn Address
	}
	a := tenant{Address{Tile: 0}, Address{Tile: 1}}
	b := tenant{Address{Tile: 2}, Address{Tile: 3}}
	for _, tn := range []tenant{a, b} {
		for _, u := range []Address{tn.src, tn.fn} {
			if _, err := fabric.AddUnit(u, cim.KindCompute, 1); err != nil {
				t.Fatal(err)
			}
		}
		if err := fabric.Configure(tn.fn, isa.FuncReLU, nil); err != nil {
			t.Fatal(err)
		}
		if err := fabric.Connect(tn.src, tn.fn); err != nil {
			t.Fatal(err)
		}
	}

	mgr, err := virt.NewManager(fabric)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.CreatePartition("tenant-a", []Address{a.src, a.fn}); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.CreatePartition("tenant-b", []Address{b.src, b.fn}); err != nil {
		t.Fatal(err)
	}
	// Tenant A pays for guaranteed bandwidth.
	if err := mgr.ReserveBandwidth("tenant-a", 0.6); err != nil {
		t.Fatal(err)
	}

	// Isolation: no cross-tenant traffic.
	if err := mgr.CheckTraffic(a.src, b.fn); err == nil {
		t.Error("cross-tenant traffic allowed")
	}
	if err := mgr.CheckTraffic(a.src, a.fn); err != nil {
		t.Errorf("intra-tenant traffic blocked: %v", err)
	}

	// Both tenants compute concurrently on the shared fabric.
	if err := fabric.Stream(a.src, []float64{-1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := fabric.Stream(b.src, []float64{3, -4}); err != nil {
		t.Fatal(err)
	}
	out, err := fabric.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := out[a.fn]; len(got) != 1 || got[0][0] != 0 || got[0][1] != 2 {
		t.Errorf("tenant A output = %v", got)
	}
	if got := out[b.fn]; len(got) != 1 || got[0][0] != 3 || got[0][1] != 0 {
		t.Errorf("tenant B output = %v", got)
	}

	// Tear down tenant B; its units return to the free pool.
	if err := mgr.DeletePartition("tenant-b"); err != nil {
		t.Fatal(err)
	}
	if err := mgr.CheckTraffic(a.src, b.fn); err == nil {
		t.Error("traffic to freed units should still be blocked (A is partitioned)")
	}
}

// TestIntegrationSecureInferenceService threads security + DPE: encrypted
// requests are opened and inspected at the boundary, authorized by
// capability, executed on crossbars, and the response is sealed again.
func TestIntegrationSecureInferenceService(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net, err := NewMLP("svc", []int{8, 16, 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewDPE(DefaultDPEConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Load(net); err != nil {
		t.Fatal(err)
	}

	keys := security.NewKeyRing()
	key, err := keys.Generate(42)
	if err != nil {
		t.Fatal(err)
	}
	inspector := security.NewInspector(security.Policy{MaxPayload: 64})
	auth, err := security.NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	cap1, err := auth.Mint(0, 0, 3, security.RightExecute)
	if err != nil {
		t.Fatal(err)
	}

	// Client side: seal the request.
	req := &Packet{Dst: Address{Tile: 1}, Stream: 42, Type: 1, Payload: []float64{1, -1, 0.5, 0, 0.25, -0.5, 1, 0}}
	ct, _, err := security.Seal(req, key)
	if err != nil {
		t.Fatal(err)
	}

	// Service side: open, inspect, authorize, execute, seal response.
	got, _, err := security.Open(ct, key)
	if err != nil {
		t.Fatal(err)
	}
	if err := inspector.Inspect(got); err != nil {
		t.Fatal(err)
	}
	if err := auth.Authorize(cap1, got.Dst, security.RightExecute); err != nil {
		t.Fatal(err)
	}
	out, _, err := engine.Infer(got.Payload)
	if err != nil {
		t.Fatal(err)
	}
	resp := &Packet{Src: got.Dst, Dst: got.Src, Stream: got.Stream, Type: 1, Payload: out}
	respCT, _, err := security.Seal(resp, key)
	if err != nil {
		t.Fatal(err)
	}

	// Client decrypts and checks the result against software.
	plain, _, err := security.Open(respCT, key)
	if err != nil {
		t.Fatal(err)
	}
	want, err := net.Forward(req.Payload)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(plain.Payload[i]-want[i]) > 0.1 {
			t.Errorf("out[%d] = %g, want ~%g", i, plain.Payload[i], want[i])
		}
	}

	// A request outside the capability's tile range is refused.
	if err := auth.Authorize(cap1, Address{Tile: 9}, security.RightExecute); err == nil {
		t.Error("out-of-range request authorized")
	}
}

// TestIntegrationSelfHealingPipeline combines wear monitoring, proactive
// healing, and continued operation: a crossbar pipeline keeps serving
// inference while the healer retires its worn stage to a spare.
func TestIntegrationSelfHealingPipeline(t *testing.T) {
	cfg := DefaultFabricConfig()
	cfg.Crossbar.Rows, cfg.Crossbar.Cols = 8, 8
	reg := NewRegistry()
	fabric, err := NewFabric(cfg, NewLedger(), reg)
	if err != nil {
		t.Fatal(err)
	}
	src := Address{Tile: 0}
	mvm := Address{Tile: 1}
	spare := Address{Tile: 1, Unit: 1}
	sink := Address{Tile: 2}
	if _, err := fabric.AddUnit(src, cim.KindCompute, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := fabric.AddUnit(sink, cim.KindCompute, 1); err != nil {
		t.Fatal(err)
	}
	w := [][]float64{{1, 0}, {0, 1}}
	for _, u := range []Address{mvm, spare} {
		if _, err := fabric.AddUnit(u, cim.KindCrossbar, 1); err != nil {
			t.Fatal(err)
		}
		if err := fabric.Configure(u, isa.FuncMVM, w); err != nil {
			t.Fatal(err)
		}
	}
	if err := fabric.Connect(src, mvm); err != nil {
		t.Fatal(err)
	}
	if err := fabric.Connect(mvm, sink); err != nil {
		t.Fatal(err)
	}

	// Age the primary with repeated weight updates.
	for i := 0; i < 30; i++ {
		if _, err := fabric.Reprogram(mvm, w); err != nil {
			t.Fatal(err)
		}
	}

	guard, err := fault.NewGuard(fabric, reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := guard.AddSpare(mvm, spare); err != nil {
		t.Fatal(err)
	}
	params := memristor.DefaultParams()
	params.Endurance = 10
	mon, err := service.NewMonitor(fabric, params, 0.8, reg)
	if err != nil {
		t.Fatal(err)
	}
	healer, err := service.NewHealer(mon, guard, reg)
	if err != nil {
		t.Fatal(err)
	}
	retired, err := healer.Heal()
	if err != nil {
		t.Fatal(err)
	}
	if len(retired) != 1 || retired[0] != mvm {
		t.Fatalf("healer retired %v, want [%v]", retired, mvm)
	}

	// The pipeline still serves through the spare.
	if err := fabric.Stream(src, []float64{0.5, -0.25}); err != nil {
		t.Fatal(err)
	}
	out, err := fabric.Run()
	if err != nil {
		t.Fatal(err)
	}
	res := out[sink]
	if len(res) != 1 {
		t.Fatalf("results after healing = %d", len(res))
	}
	if math.Abs(res[0][0]-0.5) > 0.1 || math.Abs(res[0][1]+0.25) > 0.1 {
		t.Errorf("post-healing output = %v, want ~[0.5 -0.25]", res[0])
	}
}
